//! Structural fingerprinting of loop bodies.
//!
//! A [`Fingerprint`] is a 128-bit content hash of everything about a
//! [`LoopBody`] that the schedulers can observe: operation kinds in
//! issue order, operand wiring with ω distances, predicate guards, and
//! the dependence graph. Diagnostic names — the loop name and
//! [`Value::name`](crate::Value) — are deliberately excluded, so two
//! loops that differ only by renaming (alpha-equivalent bodies, as the
//! corpus generator produces in quantity) hash to the same fingerprint
//! and can share one cached schedule.
//!
//! The hash itself is vendored (two mixed 64-bit lanes with a
//! splitmix64-style finalizer) so the crate stays dependency-free; it
//! is a *content* hash for cache keying, not a cryptographic one.
//!
//! Canonicalization rules, chosen to match what scheduling depends on:
//!
//! * **Ops keep index order.** The slack scheduler breaks priority ties
//!   by node index, so op order is identity-bearing and must be hashed
//!   as-is.
//! * **Dependence arcs are sorted** by `(from, to, kind, via, ω, value)`
//!   before hashing: MinDist and the schedulers fold over arcs with
//!   order-insensitive operations (fixpoint bound updates, counted
//!   sets), so arc insertion order is *not* identity-bearing.
//! * **Values are named by structure**, not by id or string: a defined
//!   value hashes as the index of its defining op, a live-in/invariant
//!   value as the rank of its first use in op scan order, each tagged
//!   with its type and invariant flag.

use crate::{Dep, LoopBody, Op, ValueId, ValueType};

/// A 128-bit structural content hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Renders the fingerprint as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-digit form produced by [`Fingerprint::to_hex`].
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

const K0: u64 = 0x9e37_79b9_7f4a_7c15;
const K1: u64 = 0xc2b2_ae3d_27d4_eb4f;
const K2: u64 = 0x1656_67b1_9e37_79f9;

/// splitmix64 finalizer: full-avalanche 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Streaming 128-bit hasher: two 64-bit lanes, cross-fed per word so a
/// collision must survive both mixes simultaneously.
#[derive(Clone)]
pub struct FpHasher {
    lo: u64,
    hi: u64,
    words: u64,
}

impl FpHasher {
    /// A hasher seeded with a domain-separation salt. Distinct salts
    /// (e.g. schema versions) produce unrelated hash families.
    pub fn new(salt: &str) -> Self {
        let mut h = FpHasher {
            lo: K0,
            hi: K1,
            words: 0,
        };
        h.write_str(salt);
        h
    }

    /// Absorbs one word.
    pub fn write_u64(&mut self, v: u64) {
        self.words = self.words.wrapping_add(1);
        self.lo = mix64(self.lo.wrapping_add(v).wrapping_mul(K0)).rotate_left(13);
        self.hi = mix64(self.hi ^ v.rotate_left(32).wrapping_mul(K1)).wrapping_add(self.lo);
    }

    /// Absorbs a length-prefixed byte string (no extension ambiguity:
    /// `"ab" + "c"` and `"a" + "bc"` hash differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    /// Absorbs a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Finalizes into a [`Fingerprint`] (the hasher may keep absorbing
    /// afterwards; `finish` does not consume state).
    pub fn finish(&self) -> Fingerprint {
        let a = mix64(self.lo ^ self.words.wrapping_mul(K2));
        let b = mix64(self.hi ^ self.words.rotate_left(17).wrapping_mul(K0) ^ a);
        Fingerprint((u128::from(a) << 64) | u128::from(b))
    }
}

fn ty_code(ty: ValueType) -> u64 {
    match ty {
        ValueType::Int => 0,
        ValueType::Float => 1,
        ValueType::Addr => 2,
        ValueType::Pred => 3,
    }
}

/// Canonical name for one value: where it comes from, not what it is
/// called. `(tag, rank, type, invariant)` where tag 0 = defined by an
/// op (rank = defining op index), tag 1 = live-in (rank = first-use
/// rank in op scan order), tag 2 = never referenced (rank = 0; such
/// values cannot influence scheduling).
type ValueToken = (u64, u64, u64, u64);

fn value_tokens(body: &LoopBody) -> Vec<ValueToken> {
    let mut tokens: Vec<Option<ValueToken>> = vec![None; body.values().len()];
    for v in body.values() {
        if let Some(def) = v.def {
            tokens[v.id.index()] = Some((0, def.index() as u64, ty_code(v.ty), v.invariant as u64));
        }
    }
    // Live-ins rank by first use, scanning ops in order, inputs before
    // predicate — the same for any alpha-renaming of the same wiring.
    let mut next_rank = 0u64;
    let mut visit = |id: ValueId, tokens: &mut Vec<Option<ValueToken>>| {
        let slot = &mut tokens[id.index()];
        if slot.is_none() {
            let v = body.value(id);
            *slot = Some((1, next_rank, ty_code(v.ty), v.invariant as u64));
            next_rank += 1;
        }
    };
    for op in body.ops() {
        for &input in &op.inputs {
            visit(input, &mut tokens);
        }
        if let Some(p) = op.predicate {
            visit(p, &mut tokens);
        }
    }
    tokens
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.unwrap_or((2, 0, ty_code(body.values()[i].ty), 0)))
        .collect()
}

fn write_token(h: &mut FpHasher, t: ValueToken) {
    h.write_u64(t.0);
    h.write_u64(t.1);
    h.write_u64(t.2);
    h.write_u64(t.3);
}

fn write_op(h: &mut FpHasher, op: &Op, tokens: &[ValueToken]) {
    h.write_str(op.kind.mnemonic());
    h.write_u64(op.inputs.len() as u64);
    for (i, &input) in op.inputs.iter().enumerate() {
        write_token(h, tokens[input.index()]);
        h.write_u64(u64::from(op.input_omegas.get(i).copied().unwrap_or(0)));
    }
    match op.result {
        Some(r) => {
            h.write_u64(1);
            write_token(h, tokens[r.index()]);
        }
        None => h.write_u64(0),
    }
    match op.predicate {
        Some(p) => {
            h.write_u64(1);
            write_token(h, tokens[p.index()]);
        }
        None => h.write_u64(0),
    }
}

fn dep_key(d: &Dep, tokens: &[ValueToken]) -> [u64; 6] {
    [
        d.from.index() as u64,
        d.to.index() as u64,
        match d.kind {
            crate::DepKind::Flow => 0,
            crate::DepKind::Anti => 1,
            crate::DepKind::Output => 2,
        },
        match d.via {
            crate::DepVia::Register => 0,
            crate::DepVia::Memory => 1,
            crate::DepVia::Control => 2,
        },
        u64::from(d.omega),
        match d.value {
            // Fold the value token into one word; tag/rank dominate.
            Some(v) => {
                let t = tokens[v.index()];
                1 + (t.0 << 48) + (t.1 << 8) + (t.2 << 2) + t.3
            }
            None => 0,
        },
    ]
}

/// Absorbs the alpha-invariant structure of `body` into `h`.
///
/// Everything scheduling can observe is included — op kinds and order,
/// operand/predicate wiring with ω distances, the (canonically sorted)
/// dependence graph, and [`LoopMeta`](crate::LoopMeta). The loop name
/// and value names are excluded.
pub fn write_structure(h: &mut FpHasher, body: &LoopBody) {
    let tokens = value_tokens(body);

    h.write_u64(body.num_ops() as u64);
    for op in body.ops() {
        write_op(h, op, &tokens);
    }

    let mut arcs: Vec<[u64; 6]> = body.deps().iter().map(|d| dep_key(d, &tokens)).collect();
    arcs.sort_unstable();
    h.write_u64(arcs.len() as u64);
    for arc in arcs {
        for w in arc {
            h.write_u64(w);
        }
    }

    h.write_u64(u64::from(body.meta().basic_blocks));
    match body.meta().min_trip_count {
        Some(t) => {
            h.write_u64(1);
            h.write_u64(t);
        }
        None => h.write_u64(0),
    }
}

/// The structural fingerprint of a body on its own (mostly useful for
/// tests; cache keys combine this with machine/backend context via
/// [`FpHasher`]).
pub fn structural_fingerprint(body: &LoopBody) -> Fingerprint {
    let mut h = FpHasher::new("lsms-ir/structure/1");
    write_structure(&mut h, body);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DepKind, DepVia, LoopBuilder, OpKind};

    fn daxpy_like(name: &str, vals: [&str; 4]) -> LoopBody {
        let mut b = LoopBuilder::new(name);
        let base = b.invariant(ValueType::Addr, vals[0]);
        let a = b.invariant(ValueType::Float, vals[1]);
        let x = b.named_value(ValueType::Float, vals[2]);
        let t = b.named_value(ValueType::Float, vals[3]);
        let ld = b.op(OpKind::Load, &[base], Some(x));
        let mul = b.op(OpKind::FMul, &[a, x], Some(t));
        let st = b.op(OpKind::Store, &[base, t], None);
        b.flow_dep(ld, mul, 0);
        b.flow_dep(mul, st, 0);
        b.dep(st, ld, DepKind::Anti, DepVia::Memory, 1);
        b.finish()
    }

    #[test]
    fn alpha_renamed_bodies_collide() {
        let a = daxpy_like("first", ["base", "a", "x", "t"]);
        let b = daxpy_like("totally_different", ["p", "q", "r", "s"]);
        assert_ne!(a.name(), b.name());
        assert_eq!(structural_fingerprint(&a), structural_fingerprint(&b));
    }

    #[test]
    fn structural_changes_diverge() {
        let base = daxpy_like("base", ["b", "a", "x", "t"]);
        let fp = structural_fingerprint(&base);

        // Different op kind.
        let mut b = LoopBuilder::new("kind");
        let base_v = b.invariant(ValueType::Addr, "b");
        let a = b.invariant(ValueType::Float, "a");
        let x = b.new_value(ValueType::Float);
        let t = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[base_v], Some(x));
        let mul = b.op(OpKind::FAdd, &[a, x], Some(t)); // FAdd, not FMul
        let st = b.op(OpKind::Store, &[base_v, t], None);
        b.flow_dep(ld, mul, 0);
        b.flow_dep(mul, st, 0);
        b.dep(st, ld, DepKind::Anti, DepVia::Memory, 1);
        assert_ne!(structural_fingerprint(&b.finish()), fp);

        // Different omega on the memory arc.
        let mut b = LoopBuilder::new("omega");
        let base_v = b.invariant(ValueType::Addr, "b");
        let a = b.invariant(ValueType::Float, "a");
        let x = b.new_value(ValueType::Float);
        let t = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[base_v], Some(x));
        let mul = b.op(OpKind::FMul, &[a, x], Some(t));
        let st = b.op(OpKind::Store, &[base_v, t], None);
        b.flow_dep(ld, mul, 0);
        b.flow_dep(mul, st, 0);
        b.dep(st, ld, DepKind::Anti, DepVia::Memory, 2); // omega 2, not 1
        assert_ne!(structural_fingerprint(&b.finish()), fp);

        // Missing arc.
        let mut b = LoopBuilder::new("arc");
        let base_v = b.invariant(ValueType::Addr, "b");
        let a = b.invariant(ValueType::Float, "a");
        let x = b.new_value(ValueType::Float);
        let t = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[base_v], Some(x));
        let mul = b.op(OpKind::FMul, &[a, x], Some(t));
        let _st = b.op(OpKind::Store, &[base_v, t], None);
        b.flow_dep(ld, mul, 0);
        assert_ne!(structural_fingerprint(&b.finish()), fp);
    }

    #[test]
    fn dep_insertion_order_is_canonicalized() {
        let build = |flip: bool| {
            let mut b = LoopBuilder::new("order");
            let x = b.new_value(ValueType::Int);
            let y = b.new_value(ValueType::Int);
            let o1 = b.op(OpKind::IntAdd, &[y, y], Some(x));
            let o2 = b.op(OpKind::IntMul, &[x, x], Some(y));
            if flip {
                b.flow_dep(o2, o1, 1);
                b.flow_dep(o1, o2, 0);
            } else {
                b.flow_dep(o1, o2, 0);
                b.flow_dep(o2, o1, 1);
            }
            b.finish()
        };
        assert_eq!(
            structural_fingerprint(&build(false)),
            structural_fingerprint(&build(true))
        );
    }

    #[test]
    fn invariant_flag_and_type_matter() {
        let build = |ty: ValueType| {
            let mut b = LoopBuilder::new("ty");
            let a = b.invariant(ty, "a");
            let t = b.new_value(ty);
            b.op(OpKind::Copy, &[a], Some(t));
            b.finish()
        };
        assert_ne!(
            structural_fingerprint(&build(ValueType::Int)),
            structural_fingerprint(&build(ValueType::Float))
        );
    }

    #[test]
    fn hex_round_trips() {
        let fp = structural_fingerprint(&daxpy_like("h", ["b", "a", "x", "t"]));
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::parse_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::parse_hex("zz"), None);
        assert_eq!(Fingerprint::parse_hex(&hex[..31]), None);
    }

    #[test]
    fn hasher_has_no_trivial_extension_collisions() {
        let mut a = FpHasher::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = FpHasher::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        assert_ne!(FpHasher::new("s1").finish(), FpHasher::new("s2").finish());
    }
}
