//! Incremental construction of [`LoopBody`] graphs.

use crate::{
    Dep, DepId, DepKind, DepVia, LoopBody, LoopMeta, Op, OpId, OpKind, Value, ValueId, ValueType,
};

/// Builds a [`LoopBody`] one value, operation, and arc at a time.
///
/// The builder does not add dependence arcs implied by the SSA def/use
/// wiring: front ends know the iteration distance (ω) of each use, so they
/// state every arc explicitly via [`flow_dep`](Self::flow_dep) and
/// [`dep`](Self::dep). Guard-predicate arcs, however, follow the same rule —
/// add a flow arc from the predicate's definition to the guarded operation.
///
/// # Example
///
/// ```
/// use lsms_ir::{LoopBuilder, OpKind, ValueType};
///
/// let mut b = LoopBuilder::new("axpy");
/// let a = b.invariant(ValueType::Float, "a");
/// let x = b.new_value(ValueType::Float);
/// let y = b.new_value(ValueType::Float);
/// let t = b.new_value(ValueType::Float);
/// let mul = b.op(OpKind::FMul, &[a, x], Some(y));
/// let add = b.op(OpKind::FAdd, &[y, a], Some(t));
/// b.flow_dep(mul, add, 0);
/// let body = b.finish();
/// assert_eq!(body.num_ops(), 2);
/// ```
#[derive(Debug)]
pub struct LoopBuilder {
    name: String,
    ops: Vec<Op>,
    values: Vec<Value>,
    deps: Vec<Dep>,
    meta: LoopMeta,
}

impl LoopBuilder {
    /// Starts an empty body with the given diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            values: Vec::new(),
            deps: Vec::new(),
            meta: LoopMeta {
                basic_blocks: 1,
                min_trip_count: None,
            },
        }
    }

    /// Sets source metadata for the body.
    pub fn meta(&mut self, meta: LoopMeta) -> &mut Self {
        self.meta = meta;
        self
    }

    /// Creates a fresh loop-variant value of type `ty` with a generated
    /// name.
    pub fn new_value(&mut self, ty: ValueType) -> ValueId {
        let id = ValueId::new(self.values.len());
        self.values.push(Value {
            id,
            ty,
            def: None,
            invariant: false,
            name: format!("t{}", id.index()),
        });
        id
    }

    /// Creates a fresh named loop-variant value.
    pub fn named_value(&mut self, ty: ValueType, name: impl Into<String>) -> ValueId {
        let id = self.new_value(ty);
        self.values[id.index()].name = name.into();
        id
    }

    /// Creates a loop-invariant value (GPR file): a constant, an array base
    /// address, or any scalar the loop only reads.
    pub fn invariant(&mut self, ty: ValueType, name: impl Into<String>) -> ValueId {
        let id = self.new_value(ty);
        let v = &mut self.values[id.index()];
        v.invariant = true;
        v.name = name.into();
        id
    }

    /// Appends an unguarded operation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the kind's arity, if the kind
    /// requires a result and `result` is `None` (or vice versa), or if
    /// `result` names a value that already has a definition.
    pub fn op(&mut self, kind: OpKind, inputs: &[ValueId], result: Option<ValueId>) -> OpId {
        self.op_guarded(kind, inputs, result, None)
    }

    /// Appends an operation guarded by `predicate` (§2.2).
    ///
    /// # Panics
    ///
    /// As for [`op`](Self::op).
    pub fn op_guarded(
        &mut self,
        kind: OpKind,
        inputs: &[ValueId],
        result: Option<ValueId>,
        predicate: Option<ValueId>,
    ) -> OpId {
        let with_omegas: Vec<(ValueId, u32)> = inputs.iter().map(|&v| (v, 0)).collect();
        self.op_with_omegas(kind, &with_omegas, result, predicate)
    }

    /// Appends an operation whose inputs carry explicit iteration
    /// distances: position `k` reads `inputs[k].0` from `inputs[k].1`
    /// iterations earlier. Front ends use this after load/store elimination
    /// and scalar-recurrence resolution (§2.3).
    ///
    /// # Panics
    ///
    /// As for [`op`](Self::op).
    pub fn op_with_omegas(
        &mut self,
        kind: OpKind,
        inputs: &[(ValueId, u32)],
        result: Option<ValueId>,
        predicate: Option<ValueId>,
    ) -> OpId {
        assert_eq!(inputs.len(), kind.arity(), "{kind}: wrong input count");
        assert_eq!(
            result.is_some(),
            kind.has_result(),
            "{kind}: result presence mismatch"
        );
        let id = OpId::new(self.ops.len());
        if let Some(r) = result {
            let v = &mut self.values[r.index()];
            assert!(v.def.is_none(), "value {r} already defined");
            assert!(
                !v.invariant,
                "invariant value {r} cannot be defined in the loop"
            );
            v.def = Some(id);
        }
        self.ops.push(Op {
            id,
            kind,
            inputs: inputs.iter().map(|&(v, _)| v).collect(),
            input_omegas: inputs.iter().map(|&(_, w)| w).collect(),
            result,
            predicate,
        });
        id
    }

    /// Adds a register flow dependence from `from`'s result to `to`,
    /// carrying ω = `omega`.
    ///
    /// # Panics
    ///
    /// Panics if `from` has no result.
    pub fn flow_dep(&mut self, from: OpId, to: OpId, omega: u32) -> DepId {
        let value = self.ops[from.index()]
            .result
            .expect("flow dependence source must define a value");
        self.push_dep(Dep {
            from,
            to,
            kind: DepKind::Flow,
            via: DepVia::Register,
            omega,
            value: Some(value),
        })
    }

    /// Adds an arbitrary dependence arc.
    pub fn dep(&mut self, from: OpId, to: OpId, kind: DepKind, via: DepVia, omega: u32) -> DepId {
        self.push_dep(Dep {
            from,
            to,
            kind,
            via,
            omega,
            value: None,
        })
    }

    fn push_dep(&mut self, dep: Dep) -> DepId {
        let id = DepId::new(self.deps.len());
        self.deps.push(dep);
        id
    }

    /// Number of operations appended so far.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The type of a value created earlier.
    pub fn value_type(&self, v: ValueId) -> ValueType {
        self.values[v.index()].ty
    }

    /// True if `v` has been defined by an operation so far.
    pub fn is_defined(&self, v: ValueId) -> bool {
        self.values[v.index()].def.is_some()
    }

    /// The current `(value, ω)` at input position `index` of `op` —
    /// current, because [`replace_uses`](Self::replace_uses) may have
    /// rewritten it since the operation was appended.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the operation.
    pub fn op_input(&self, op: OpId, index: usize) -> (ValueId, u32) {
        let op = &self.ops[op.index()];
        (op.inputs[index], op.input_omegas[index])
    }

    /// Rewires every input use of `of` to `with`, adding `add_omega` to the
    /// use's iteration distance.
    ///
    /// Front ends emit *placeholder* values for quantities that resolve
    /// only after the whole body is seen — the previous iteration's value
    /// of a carried scalar, or the register replacing an eliminated load
    /// (§2.3) — then call this once the real value and distance are known.
    ///
    /// # Panics
    ///
    /// Panics if `of` is used as a guard predicate (guards cannot carry a
    /// distance).
    pub fn replace_uses(&mut self, of: ValueId, with: ValueId, add_omega: u32) {
        for op in &mut self.ops {
            assert_ne!(
                op.predicate,
                Some(of),
                "cannot rewrite a guard predicate use"
            );
            for (input, omega) in op.inputs.iter_mut().zip(op.input_omegas.iter_mut()) {
                if *input == of {
                    *input = with;
                    *omega += add_omega;
                }
            }
        }
    }

    /// Finalises the body after generating the register flow arcs implied
    /// by the SSA wiring: for every input position `(v, ω)` whose value is
    /// defined in the loop, a flow arc `def(v) → op` with distance ω, and
    /// likewise for guard predicates (ω = 0). Arcs identical to manually
    /// added ones are not duplicated.
    pub fn finish_with_auto_flow(mut self) -> LoopBody {
        let mut extra: Vec<Dep> = Vec::new();
        for op in &self.ops {
            let guard = op.predicate.iter().map(|&p| (p, 0u32));
            for (v, omega) in op
                .inputs
                .iter()
                .copied()
                .zip(op.input_omegas.iter().copied())
                .chain(guard)
            {
                let Some(def) = self.values[v.index()].def else {
                    continue;
                };
                let dep = Dep {
                    from: def,
                    to: op.id,
                    kind: DepKind::Flow,
                    via: DepVia::Register,
                    omega,
                    value: Some(v),
                };
                if !self.deps.contains(&dep) && !extra.contains(&dep) {
                    extra.push(dep);
                }
            }
        }
        self.deps.extend(extra);
        self.finish()
    }

    /// Finalises the body, computing the adjacency tables.
    pub fn finish(self) -> LoopBody {
        let mut out_deps = vec![Vec::new(); self.ops.len()];
        let mut in_deps = vec![Vec::new(); self.ops.len()];
        for (i, dep) in self.deps.iter().enumerate() {
            out_deps[dep.from.index()].push(DepId::new(i));
            in_deps[dep.to.index()].push(DepId::new(i));
        }
        LoopBody {
            name: self.name,
            ops: self.ops,
            values: self.values,
            deps: self.deps,
            out_deps,
            in_deps,
            meta: self.meta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_defs() {
        let mut b = LoopBuilder::new("t");
        let x = b.new_value(ValueType::Int);
        let y = b.new_value(ValueType::Int);
        let o = b.op(OpKind::IntAdd, &[y, y], Some(x));
        let body = b.finish();
        assert_eq!(body.value(x).def, Some(o));
        assert_eq!(body.value(y).def, None);
        assert!(body.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn double_definition_panics() {
        let mut b = LoopBuilder::new("t");
        let x = b.new_value(ValueType::Int);
        let y = b.new_value(ValueType::Int);
        b.op(OpKind::IntAdd, &[y, y], Some(x));
        b.op(OpKind::IntSub, &[y, y], Some(x));
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn arity_mismatch_panics() {
        let mut b = LoopBuilder::new("t");
        let x = b.new_value(ValueType::Int);
        b.op(OpKind::IntAdd, &[x], None);
    }

    #[test]
    #[should_panic(expected = "must define a value")]
    fn flow_dep_from_store_panics() {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let st = b.op(OpKind::Store, &[a, x], None);
        b.flow_dep(st, st, 1);
    }

    #[test]
    fn invariants_cannot_be_defined() {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Float, "a");
        let x = b.new_value(ValueType::Float);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.op(OpKind::FAdd, &[x, x], Some(a));
        }));
        assert!(result.is_err());
    }
}
