//! The loop body: an SSA operation list plus its dependence graph.

use std::fmt;

use crate::{Dep, DepId, Op, OpId, OpKind, Value, ValueId, ValueType};

/// Metadata about where the body came from; used by the corpus statistics
/// (Table 2) and eligibility filters (§6).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopMeta {
    /// Number of basic blocks in the body *before* if-conversion.
    pub basic_blocks: u32,
    /// Minimum trip count known for the loop, if any (the compiler does not
    /// modulo schedule loops with fewer than 5 iterations).
    pub min_trip_count: Option<u64>,
}

/// The four loop classes of Tables 3 and 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoopClass {
    /// If-converted conditionals, no non-trivial recurrence circuit.
    Conditional,
    /// Non-trivial recurrence circuit, no conditionals.
    Recurrence,
    /// Both conditionals and recurrences.
    Both,
    /// Straight-line body with only trivial (self-arc) circuits.
    Neither,
}

impl fmt::Display for LoopClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LoopClass::Conditional => "Has Conditional",
            LoopClass::Recurrence => "Has Recurrence",
            LoopClass::Both => "Has Both",
            LoopClass::Neither => "Has Neither",
        };
        f.write_str(s)
    }
}

/// Structural errors detected by [`LoopBody::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyError {
    /// A value is defined by more than one operation (SSA violation).
    MultipleDefs(ValueId),
    /// A non-invariant, non-live-in value recorded a defining op that does
    /// not actually define it.
    DefMismatch(ValueId),
    /// An operation's input count does not match its kind's arity.
    BadArity(OpId),
    /// A guard predicate input is not of predicate type.
    BadPredicateType(OpId, ValueId),
    /// An invariant value is defined inside the loop.
    InvariantDefined(ValueId),
    /// A register flow arc's value is not defined by the arc's source.
    FlowValueMismatch(OpId, OpId),
    /// More than one `brtop` operation.
    MultipleBrtop,
}

impl fmt::Display for BodyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyError::MultipleDefs(v) => write!(f, "value {v} has multiple definitions"),
            BodyError::DefMismatch(v) => write!(f, "value {v} records a wrong defining op"),
            BodyError::BadArity(o) => write!(f, "operation {o} has the wrong input count"),
            BodyError::BadPredicateType(o, v) => {
                write!(f, "operation {o} is guarded by non-predicate value {v}")
            }
            BodyError::InvariantDefined(v) => {
                write!(f, "invariant value {v} is defined inside the loop")
            }
            BodyError::FlowValueMismatch(a, b) => {
                write!(
                    f,
                    "flow arc {a} -> {b} names a value its source does not define"
                )
            }
            BodyError::MultipleBrtop => write!(f, "loop body has more than one brtop"),
        }
    }
}

impl std::error::Error for BodyError {}

/// A branch-free (if-converted) loop body in SSA form, together with its
/// ω-labelled dependence graph.
///
/// Construct with [`LoopBuilder`](crate::LoopBuilder); the builder computes
/// the adjacency tables and checks structural invariants.
#[derive(Clone, Debug)]
pub struct LoopBody {
    pub(crate) name: String,
    pub(crate) ops: Vec<Op>,
    pub(crate) values: Vec<Value>,
    pub(crate) deps: Vec<Dep>,
    pub(crate) out_deps: Vec<Vec<DepId>>,
    pub(crate) in_deps: Vec<Vec<DepId>>,
    pub(crate) meta: LoopMeta,
}

impl LoopBody {
    /// The loop's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source metadata.
    pub fn meta(&self) -> &LoopMeta {
        &self.meta
    }

    /// All operations, indexable by [`OpId::index`].
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// All values, indexable by [`ValueId::index`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// All dependence arcs, indexable by [`DepId::index`].
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// The operation with the given id.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// The value with the given id.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// The dependence arc with the given id.
    pub fn dep(&self, id: DepId) -> &Dep {
        &self.deps[id.index()]
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Arcs whose source is `op`.
    pub fn deps_from(&self, op: OpId) -> impl Iterator<Item = &Dep> + '_ {
        self.out_deps[op.index()]
            .iter()
            .map(|&d| &self.deps[d.index()])
    }

    /// Arcs whose sink is `op`.
    pub fn deps_to(&self, op: OpId) -> impl Iterator<Item = &Dep> + '_ {
        self.in_deps[op.index()]
            .iter()
            .map(|&d| &self.deps[d.index()])
    }

    /// The loop-closing `brtop`, if the body carries one.
    pub fn brtop(&self) -> Option<OpId> {
        self.ops
            .iter()
            .find(|o| o.kind == OpKind::Brtop)
            .map(|o| o.id)
    }

    /// True if any operation is guarded by a predicate (the body was
    /// if-converted).
    pub fn has_conditional(&self) -> bool {
        self.ops.iter().any(|o| o.predicate.is_some())
    }

    /// True if the dependence graph contains a *non-trivial* recurrence
    /// circuit (a cycle through at least two distinct operations).
    pub fn has_recurrence(&self) -> bool {
        crate::scc::has_recurrence(self)
    }

    /// The loop's class for Tables 3 and 4.
    pub fn class(&self) -> LoopClass {
        match (self.has_conditional(), self.has_recurrence()) {
            (true, true) => LoopClass::Both,
            (true, false) => LoopClass::Conditional,
            (false, true) => LoopClass::Recurrence,
            (false, false) => LoopClass::Neither,
        }
    }

    /// Number of operations executed by the divider.
    pub fn num_divider_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind.uses_divider()).count()
    }

    /// Checks the structural invariants listed in [`BodyError`].
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), BodyError> {
        // SSA: each value defined at most once, and `Value::def` agrees.
        let mut defs: Vec<Option<OpId>> = vec![None; self.values.len()];
        for op in &self.ops {
            if let Some(r) = op.result {
                if defs[r.index()].is_some() {
                    return Err(BodyError::MultipleDefs(r));
                }
                defs[r.index()] = Some(op.id);
            }
        }
        for v in &self.values {
            if v.def != defs[v.id.index()] {
                return Err(BodyError::DefMismatch(v.id));
            }
            if v.invariant && v.def.is_some() {
                return Err(BodyError::InvariantDefined(v.id));
            }
        }
        let mut brtops = 0;
        for op in &self.ops {
            if op.inputs.len() != op.kind.arity() {
                return Err(BodyError::BadArity(op.id));
            }
            if let Some(p) = op.predicate {
                if self.value(p).ty != ValueType::Pred {
                    return Err(BodyError::BadPredicateType(op.id, p));
                }
            }
            if op.kind == OpKind::Brtop {
                brtops += 1;
            }
        }
        if brtops > 1 {
            return Err(BodyError::MultipleBrtop);
        }
        for dep in &self.deps {
            if dep.is_register_flow() {
                let v = dep
                    .value
                    .ok_or(BodyError::FlowValueMismatch(dep.from, dep.to))?;
                if self.op(dep.from).result != Some(v) {
                    return Err(BodyError::FlowValueMismatch(dep.from, dep.to));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{DepKind, DepVia, LoopBuilder, OpKind, ValueType};

    #[test]
    fn classification_covers_all_four_classes() {
        // Neither.
        let mut b = LoopBuilder::new("neither");
        let a = b.invariant(ValueType::Float, "a");
        let t = b.new_value(ValueType::Float);
        b.op(OpKind::FAdd, &[a, a], Some(t));
        assert_eq!(b.finish().class().to_string(), "Has Neither");

        // Recurrence.
        let mut b = LoopBuilder::new("rec");
        let t = b.new_value(ValueType::Float);
        let u = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FAdd, &[u, u], Some(t));
        let o2 = b.op(OpKind::FMul, &[t, t], Some(u));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        assert!(body.has_recurrence());
        assert!(!body.has_conditional());

        // Conditional.
        let mut b = LoopBuilder::new("cond");
        let a = b.invariant(ValueType::Float, "a");
        let p = b.new_value(ValueType::Pred);
        let t = b.new_value(ValueType::Float);
        let c = b.op(OpKind::CmpLt, &[a, a], Some(p));
        let g = b.op_guarded(OpKind::FAdd, &[a, a], Some(t), Some(p));
        b.flow_dep(c, g, 0);
        let body = b.finish();
        assert!(body.has_conditional());
        assert!(!body.has_recurrence());
    }

    #[test]
    fn self_arc_is_trivial_recurrence() {
        let mut b = LoopBuilder::new("acc");
        let s = b.new_value(ValueType::Float);
        let a = b.invariant(ValueType::Float, "a");
        let o = b.op(OpKind::FAdd, &[s, a], Some(s));
        b.flow_dep(o, o, 1);
        let body = b.finish();
        assert!(!body.has_recurrence(), "self-arcs are trivial circuits");
    }

    #[test]
    fn validate_accepts_well_formed_bodies() {
        let mut b = LoopBuilder::new("ok");
        let a = b.invariant(ValueType::Addr, "base");
        let x = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let st = b.op(OpKind::Store, &[a, x], None);
        b.flow_dep(ld, st, 0);
        b.dep(st, ld, DepKind::Anti, DepVia::Memory, 1);
        assert_eq!(b.finish().validate(), Ok(()));
    }

    #[test]
    fn deps_from_and_to_agree() {
        let mut b = LoopBuilder::new("adj");
        let x = b.new_value(ValueType::Int);
        let y = b.new_value(ValueType::Int);
        let o1 = b.op(OpKind::IntAdd, &[y, y], Some(x));
        let o2 = b.op(OpKind::IntMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        assert_eq!(body.deps_from(o1).count(), 1);
        assert_eq!(body.deps_to(o1).count(), 1);
        assert_eq!(body.deps_from(o1).next().unwrap().to, o2);
    }
}
