//! Index newtypes for operations, values, and dependence arcs.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the raw index, suitable for indexing dense side tables.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type! {
    /// Identifies an [`Op`](crate::Op) within one [`LoopBody`](crate::LoopBody).
    OpId, "op"
}

id_type! {
    /// Identifies a [`Value`](crate::Value) within one [`LoopBody`](crate::LoopBody).
    ValueId, "v"
}

id_type! {
    /// Identifies a [`Dep`](crate::Dep) arc within one [`LoopBody`](crate::LoopBody).
    DepId, "d"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_their_index() {
        let op = OpId::new(7);
        assert_eq!(op.index(), 7);
        assert_eq!(format!("{op}"), "op7");
        assert_eq!(format!("{op:?}"), "op7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ValueId::new(1) < ValueId::new(2));
        assert_eq!(DepId::new(3), DepId::new(3));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn id_overflow_panics() {
        let _ = OpId::new(usize::MAX);
    }
}
