//! Operations: the nodes of the dependence graph.

use std::fmt;

use crate::{OpId, ValueId};

/// The executable operation repertoire of the hypothetical VLIW target.
///
/// The set mirrors Table 1 of the paper: every kind maps onto exactly one
/// functional-unit class in `lsms-machine` (memory port, address ALU, adder,
/// multiplier, divider, or branch unit). Kinds carry no operands — operands
/// are the SSA [`Value`](crate::Value) inputs of the containing [`Op`].
///
/// Constants and array base addresses are *not* operation kinds: they are
/// loop-invariant values living in the GPR file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variant meanings are given in the table below
pub enum OpKind {
    // Address ALU (latency 1, two units).
    AddrAdd,
    AddrSub,
    AddrMul,
    // Adder (latency 1): integer add/sub/logical and float add/sub,
    // comparisons, predicate logic, select, and copies.
    IntAdd,
    IntSub,
    And,
    Or,
    Xor,
    FAdd,
    FSub,
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    PredAnd,
    PredOr,
    PredNot,
    /// `Select(p, a, b)` = `a` if `p` else `b`; produced by if-conversion at
    /// join points so that merged variables keep a single SSA definition.
    Select,
    Copy,
    // Multiplier (latency 2).
    IntMul,
    FMul,
    // Divider (not pipelined; latency 17 for div/mod, 21 for sqrt).
    IntDiv,
    IntMod,
    FDiv,
    FMod,
    FSqrt,
    // Memory port (two units; load latency 13, store latency 1).
    Load,
    Store,
    /// The loop-closing conditional branch; combines loop-count test,
    /// register rotation, and stage-predicate update (§2.1, \[5\]).
    Brtop,
}

impl OpKind {
    /// True for `Load` and `Store`.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// True for kinds executed by the non-pipelined divider.
    ///
    /// The slack scheduler halves the dynamic priority of these operations
    /// (§4.3) because their complex resource patterns leave them very few
    /// issue slots.
    pub fn uses_divider(self) -> bool {
        matches!(
            self,
            OpKind::IntDiv | OpKind::IntMod | OpKind::FDiv | OpKind::FMod | OpKind::FSqrt
        )
    }

    /// True if this kind produces a result value.
    pub fn has_result(self) -> bool {
        !matches!(self, OpKind::Store | OpKind::Brtop)
    }

    /// The number of value inputs the kind consumes (excluding the guard
    /// predicate, which every operation may optionally have).
    pub fn arity(self) -> usize {
        match self {
            OpKind::PredNot | OpKind::Copy | OpKind::Load | OpKind::FSqrt => 1,
            OpKind::Select => 3,
            OpKind::Brtop => 0,
            OpKind::Store => 2, // address, stored value
            _ => 2,
        }
    }

    /// A short lowercase mnemonic, used by the assembly printer and DOT
    /// export.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::AddrAdd => "aadd",
            OpKind::AddrSub => "asub",
            OpKind::AddrMul => "amul",
            OpKind::IntAdd => "add",
            OpKind::IntSub => "sub",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::FAdd => "fadd",
            OpKind::FSub => "fsub",
            OpKind::CmpEq => "cmpeq",
            OpKind::CmpNe => "cmpne",
            OpKind::CmpLt => "cmplt",
            OpKind::CmpLe => "cmple",
            OpKind::CmpGt => "cmpgt",
            OpKind::CmpGe => "cmpge",
            OpKind::PredAnd => "pand",
            OpKind::PredOr => "por",
            OpKind::PredNot => "pnot",
            OpKind::Select => "select",
            OpKind::Copy => "copy",
            OpKind::IntMul => "mul",
            OpKind::FMul => "fmul",
            OpKind::IntDiv => "div",
            OpKind::IntMod => "mod",
            OpKind::FDiv => "fdiv",
            OpKind::FMod => "fmod",
            OpKind::FSqrt => "fsqrt",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Brtop => "brtop",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One operation of the loop body.
///
/// Every operation has a 1-bit predicate input (§2.2); `predicate == None`
/// means the operation executes unconditionally (its predicate is the
/// always-true stage predicate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Op {
    /// This operation's id.
    pub id: OpId,
    /// What the operation computes.
    pub kind: OpKind,
    /// Value inputs, in positional order (`kind.arity()` of them).
    pub inputs: Vec<ValueId>,
    /// Per-input iteration distance: position `k` reads the instance of
    /// `inputs[k]` produced `input_omegas[k]` iterations earlier (0 = this
    /// iteration). Lets `x(i-1) + x(i-2)` read the same SSA value at two
    /// distances, as the rotating register file does in hardware (§2.3).
    pub input_omegas: Vec<u32>,
    /// The value defined, if any (SSA: at most one, defined nowhere else).
    pub result: Option<ValueId>,
    /// Guard predicate from if-conversion, if any.
    pub predicate: Option<ValueId>,
}

impl Op {
    /// All values read by this operation: inputs followed by the guard
    /// predicate (if present).
    pub fn reads(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.inputs.iter().copied().chain(self.predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_kinds_are_flagged() {
        assert!(OpKind::FSqrt.uses_divider());
        assert!(OpKind::IntMod.uses_divider());
        assert!(!OpKind::FMul.uses_divider());
    }

    #[test]
    fn memory_kinds_are_flagged() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::AddrAdd.is_memory());
    }

    #[test]
    fn stores_and_brtop_have_no_result() {
        assert!(!OpKind::Store.has_result());
        assert!(!OpKind::Brtop.has_result());
        assert!(OpKind::Load.has_result());
    }

    #[test]
    fn arity_matches_shape() {
        assert_eq!(OpKind::Select.arity(), 3);
        assert_eq!(OpKind::Load.arity(), 1);
        assert_eq!(OpKind::Store.arity(), 2);
        assert_eq!(OpKind::FAdd.arity(), 2);
        assert_eq!(OpKind::Brtop.arity(), 0);
    }

    #[test]
    fn reads_include_guard_predicate() {
        let op = Op {
            id: OpId::new(0),
            kind: OpKind::FAdd,
            inputs: vec![ValueId::new(1), ValueId::new(2)],
            input_omegas: vec![0, 0],
            result: Some(ValueId::new(3)),
            predicate: Some(ValueId::new(4)),
        };
        let reads: Vec<_> = op.reads().collect();
        assert_eq!(
            reads,
            vec![ValueId::new(1), ValueId::new(2), ValueId::new(4)]
        );
    }
}
