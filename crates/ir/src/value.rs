//! SSA values and their register classes.

use std::fmt;

use crate::{OpId, ValueId};

/// The scalar type of an SSA value.
///
/// The target machine keeps 64-bit scalars in one register (§3.2 of the
/// paper normalises all measurements to that convention), so the type only
/// determines which functional units may operate on the value and which
/// register file holds it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// A 64-bit integer.
    Int,
    /// A 64-bit float.
    Float,
    /// A memory address, produced and consumed by the Address ALU.
    Addr,
    /// A 1-bit predicate used for predicated execution (§2.2).
    Pred,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Addr => "addr",
            ValueType::Pred => "pred",
        };
        f.write_str(s)
    }
}

/// The register file a value lives in (§2.3).
///
/// The target machine has three register files, two of which rotate:
///
/// * `Rr` — rotating addresses, ints, and floats (the *loop variants*);
/// * `Gpr` — loop-invariant addresses, ints, and floats;
/// * `Icr` — rotating predicates, for iteration control and if-converted
///   code.
///
/// The paper's register-pressure study concerns the `Rr` file; `Gpr` and
/// `Icr` pressure are reported by Figures 7 and 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Rotating register file for loop-variant scalars.
    Rr,
    /// General-purpose (static) file for loop invariants.
    Gpr,
    /// Rotating predicate (iteration control) register file.
    Icr,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegClass::Rr => "RR",
            RegClass::Gpr => "GPR",
            RegClass::Icr => "ICR",
        };
        f.write_str(s)
    }
}

/// An SSA value: one definition, any number of uses.
///
/// Loop-*variant* values are defined by an operation in the body and are
/// recomputed every iteration; loop-*invariant* values (including constants
/// and array base addresses) have no defining operation and live in the GPR
/// file for the whole loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Value {
    /// This value's id.
    pub id: ValueId,
    /// The scalar type.
    pub ty: ValueType,
    /// The defining operation, or `None` for loop invariants and live-ins.
    pub def: Option<OpId>,
    /// True for loop invariants (stored in the GPR file).
    pub invariant: bool,
    /// Human-readable name for diagnostics (`x`, `t3`, ...).
    pub name: String,
}

impl Value {
    /// The register file this value occupies.
    ///
    /// Predicates always live in the rotating `ICR` file; other invariants
    /// live in the `GPR` file; remaining loop variants live in the rotating
    /// `RR` file.
    pub fn reg_class(&self) -> RegClass {
        if self.ty == ValueType::Pred {
            RegClass::Icr
        } else if self.invariant {
            RegClass::Gpr
        } else {
            RegClass::Rr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(ty: ValueType, invariant: bool) -> Value {
        Value {
            id: ValueId::new(0),
            ty,
            def: None,
            invariant,
            name: "t".to_owned(),
        }
    }

    #[test]
    fn predicates_live_in_icr_even_when_invariant() {
        assert_eq!(value(ValueType::Pred, true).reg_class(), RegClass::Icr);
        assert_eq!(value(ValueType::Pred, false).reg_class(), RegClass::Icr);
    }

    #[test]
    fn invariants_live_in_gpr() {
        assert_eq!(value(ValueType::Float, true).reg_class(), RegClass::Gpr);
        assert_eq!(value(ValueType::Addr, true).reg_class(), RegClass::Gpr);
    }

    #[test]
    fn variants_live_in_rr() {
        assert_eq!(value(ValueType::Int, false).reg_class(), RegClass::Rr);
        assert_eq!(value(ValueType::Addr, false).reg_class(), RegClass::Rr);
    }

    #[test]
    fn display_names() {
        assert_eq!(ValueType::Addr.to_string(), "addr");
        assert_eq!(RegClass::Icr.to_string(), "ICR");
    }
}
