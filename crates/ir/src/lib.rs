//! Loop intermediate representation for lifetime-sensitive modulo scheduling.
//!
//! This crate defines the dependence-graph IR consumed by the schedulers in
//! `lsms-sched`: operations ([`Op`]) in static single assignment form,
//! values ([`Value`]) partitioned into register classes (rotating `RR`,
//! loop-invariant `GPR`, rotating predicate `ICR`), and dependence arcs
//! ([`Dep`]) labelled with their iteration distance *omega* (ω) — the minimum
//! number of loop iterations separating the two endpoints, exactly as in
//! §3.1 of Huff, *Lifetime-Sensitive Modulo Scheduling* (PLDI 1993).
//!
//! Latencies are deliberately **not** stored on arcs here: an arc's latency
//! is a property of the target machine (the producing operation's functional
//! unit latency), so it is resolved when a [`LoopBody`] is paired with a
//! machine description in `lsms-machine`.
//!
//! # Example
//!
//! Building a two-statement recurrence loop body by hand (the `lsms-front`
//! crate builds the same thing from source text):
//!
//! ```
//! use lsms_ir::{LoopBuilder, OpKind, ValueType};
//!
//! let mut b = LoopBuilder::new("sample");
//! let x = b.new_value(ValueType::Float); // x(i)
//! let y = b.new_value(ValueType::Float); // y(i)
//! let fx = b.op(OpKind::FAdd, &[x, y], Some(x));
//! let fy = b.op(OpKind::FAdd, &[y, x], Some(y));
//! b.flow_dep(fx, fy, 2); // x(i-2) feeds y(i)
//! b.flow_dep(fy, fx, 2); // y(i-2) feeds x(i)
//! let body = b.finish();
//! assert!(body.has_recurrence());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod body;
mod builder;
mod dep;
mod dot;
pub mod fingerprint;
mod ids;
mod op;
mod scc;
mod transform;
mod value;

pub use body::{BodyError, LoopBody, LoopClass, LoopMeta};
pub use builder::LoopBuilder;
pub use dep::{Dep, DepKind, DepVia};
pub use dot::{to_dot, to_listing};
pub use fingerprint::{structural_fingerprint, Fingerprint, FpHasher};
pub use ids::{DepId, OpId, ValueId};
pub use op::{Op, OpKind};
pub use scc::{has_recurrence, tarjan_scc};
pub use transform::unroll;
pub use value::{RegClass, Value, ValueType};
