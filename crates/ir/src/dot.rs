//! Graphviz DOT export for dependence graphs (debugging aid).

use std::fmt::Write as _;

use crate::{DepKind, LoopBody};

/// Renders the body's dependence graph in Graphviz DOT syntax.
///
/// Flow arcs are solid, anti arcs dashed, output arcs dotted; arcs with
/// ω > 0 are labelled with their distance. Feed the output to `dot -Tsvg`.
///
/// # Example
///
/// ```
/// use lsms_ir::{LoopBuilder, OpKind, ValueType, to_dot};
///
/// let mut b = LoopBuilder::new("g");
/// let x = b.new_value(ValueType::Float);
/// let o = b.op(OpKind::FAdd, &[x, x], Some(x));
/// b.flow_dep(o, o, 1);
/// let dot = to_dot(&b.finish());
/// assert!(dot.contains("digraph"));
/// ```
pub fn to_dot(body: &LoopBody) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", body.name());
    let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
    for op in body.ops() {
        let result = op
            .result
            .map(|r| format!("{} = ", body.value(r).name))
            .unwrap_or_default();
        let guard = op
            .predicate
            .map(|p| format!(" if {}", body.value(p).name))
            .unwrap_or_default();
        let args: Vec<&str> = op
            .inputs
            .iter()
            .map(|&v| body.value(v).name.as_str())
            .collect();
        let _ = writeln!(
            s,
            "  {} [label=\"{}: {}{} {}{}\"];",
            op.id.index(),
            op.id,
            result,
            op.kind,
            args.join(", "),
            guard
        );
    }
    for dep in body.deps() {
        let style = match dep.kind {
            DepKind::Flow => "solid",
            DepKind::Anti => "dashed",
            DepKind::Output => "dotted",
        };
        let label = if dep.omega > 0 {
            format!(", label=\"ω={}\"", dep.omega)
        } else {
            String::new()
        };
        let _ = writeln!(
            s,
            "  {} -> {} [style={}{}];",
            dep.from.index(),
            dep.to.index(),
            style,
            label
        );
    }
    s.push_str("}\n");
    s
}

/// Renders the body as a flat textual listing: one operation per line with
/// named operands and their iteration distances — the compact companion to
/// [`to_dot`].
///
/// # Example
///
/// ```
/// use lsms_ir::{LoopBuilder, OpKind, ValueType, to_listing};
///
/// let mut b = LoopBuilder::new("l");
/// let x = b.named_value(ValueType::Float, "x");
/// b.op_with_omegas(OpKind::FAdd, &[(x, 1), (x, 2)], Some(x), None);
/// let text = to_listing(&b.finish());
/// assert!(text.contains("x = fadd x@1, x@2"));
/// ```
pub fn to_listing(body: &LoopBody) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "loop {} ({} ops):", body.name(), body.num_ops());
    for op in body.ops() {
        let result = op
            .result
            .map(|r| format!("{} = ", body.value(r).name))
            .unwrap_or_default();
        let args: Vec<String> = op
            .inputs
            .iter()
            .zip(&op.input_omegas)
            .map(|(&v, &w)| {
                let name = &body.value(v).name;
                if w == 0 {
                    name.clone()
                } else {
                    format!("{name}@{w}")
                }
            })
            .collect();
        let guard = op
            .predicate
            .map(|p| format!(" if {}", body.value(p).name))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "  {}: {}{} {}{}",
            op.id,
            result,
            op.kind,
            args.join(", "),
            guard
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DepVia, LoopBuilder, OpKind, ValueType};

    #[test]
    fn listing_shows_omegas_and_guards() {
        let mut b = LoopBuilder::new("l");
        let p = b.named_value(ValueType::Pred, "p");
        let f = b.invariant(ValueType::Float, "c");
        let x = b.named_value(ValueType::Float, "x");
        b.op(OpKind::CmpLt, &[f, f], Some(p));
        b.op_with_omegas(OpKind::FAdd, &[(x, 1), (f, 0)], Some(x), Some(p));
        let text = to_listing(&b.finish());
        assert!(text.contains("x = fadd x@1, c if p"), "{text}");
        assert!(text.contains("p = cmplt c, c"), "{text}");
    }

    #[test]
    fn dot_mentions_every_op_and_arc() {
        let mut b = LoopBuilder::new("sample");
        let x = b.named_value(ValueType::Float, "x");
        let y = b.named_value(ValueType::Float, "y");
        let o1 = b.op(OpKind::FAdd, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.dep(o2, o1, DepKind::Anti, DepVia::Memory, 2);
        let dot = to_dot(&b.finish());
        assert!(dot.contains("x = fadd"));
        assert!(dot.contains("y = fmul"));
        assert!(dot.contains("style=dashed, label=\"ω=2\""));
        assert!(dot.contains("0 -> 1 [style=solid]"));
    }
}
