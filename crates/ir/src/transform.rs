//! Loop transformations: unrolling for fractional initiation intervals.
//!
//! §3.1: "if a compiler performs loop unrolling, then it can take
//! advantage of fractional lower bounds. For instance, if a loop had an
//! exact minimum II of 3/2, then the compiler could unroll the loop once
//! and attempt to schedule for an II of 3. Unfortunately, the current
//! compiler does not perform any such loop transformations." This module
//! supplies the transformation the paper left as future work.

use crate::{Dep, LoopBody, LoopBuilder, LoopMeta, OpKind, ValueId};

/// Unrolls the body `factor` times: the result executes `factor`
/// consecutive source iterations per (new) iteration.
///
/// For a use at distance ω in copy `j`, the producing instance lies
/// `ω` *source* iterations back, i.e. in copy `(j − ω) mod factor` at new
/// distance `(ω − j + j′) / factor`. The same index arithmetic applies to
/// every dependence arc. Loop invariants are shared across copies; the
/// loop-closing `brtop` is emitted once.
///
/// The transformation preserves scheduling semantics (each new iteration
/// is `factor` old ones), so `RecMII(unrolled) ≤ factor · RecMII(body)`
/// and a schedule of the unrolled body at II corresponds to an effective
/// per-source-iteration interval of `II / factor` — the fractional-MII
/// win.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn unroll(body: &LoopBody, factor: u32) -> LoopBody {
    assert!(factor > 0, "unroll factor must be positive");
    let f = factor as usize;
    let mut b = LoopBuilder::new(format!("{}@x{}", body.name(), factor));

    // Value copies: invariants shared, variants one per copy.
    let mut value_copy: Vec<Vec<ValueId>> = Vec::with_capacity(body.values().len());
    for v in body.values() {
        if v.invariant {
            let nv = b.invariant(v.ty, v.name.clone());
            value_copy.push(vec![nv; f]);
        } else {
            value_copy.push(
                (0..f)
                    .map(|j| b.named_value(v.ty, format!("{}.{j}", v.name)))
                    .collect(),
            );
        }
    }

    // Which copy and distance a use in copy `j` at distance ω reads.
    let split = |j: usize, omega: u32| -> (usize, u32) {
        let j = j as i64;
        let omega = i64::from(omega);
        let src_copy = (j - omega).rem_euclid(f as i64);
        let new_omega = (omega - j + src_copy) / f as i64;
        (src_copy as usize, new_omega as u32)
    };

    let mut op_copy: Vec<Vec<crate::OpId>> = vec![Vec::new(); body.num_ops()];
    for j in 0..f {
        for op in body.ops() {
            if op.kind == OpKind::Brtop {
                continue; // one loop-closing branch for the whole body
            }
            let inputs: Vec<(ValueId, u32)> = op
                .inputs
                .iter()
                .zip(&op.input_omegas)
                .map(|(&v, &w)| {
                    if body.value(v).invariant || body.value(v).def.is_none() {
                        (value_copy[v.index()][0], w)
                    } else {
                        let (copy, nw) = split(j, w);
                        (value_copy[v.index()][copy], nw)
                    }
                })
                .collect();
            let result = op.result.map(|r| value_copy[r.index()][j]);
            let predicate = op.predicate.map(|p| {
                if body.value(p).def.is_none() {
                    value_copy[p.index()][0]
                } else {
                    // Guards are same-iteration (ω = 0): same copy.
                    value_copy[p.index()][j]
                }
            });
            let id = b.op_with_omegas(op.kind, &inputs, result, predicate);
            op_copy[op.id.index()].push(id);
        }
    }
    if body.brtop().is_some() {
        b.op(OpKind::Brtop, &[], None);
    }

    // Replicate explicit arcs (memory and control arcs carry ordering the
    // SSA wiring cannot reconstruct). Register flow arcs are regenerated
    // by `finish_with_auto_flow`, so only non-register arcs are copied.
    for dep in body.deps() {
        if dep.is_register_flow() {
            continue;
        }
        if op_copy[dep.from.index()].is_empty() || op_copy[dep.to.index()].is_empty() {
            continue; // arcs touching brtop (none in practice)
        }
        for j in 0..f {
            let (src_copy, new_omega) = split(j, dep.omega);
            let from = op_copy[dep.from.index()][src_copy];
            let to = op_copy[dep.to.index()][j];
            if from == to && new_omega == 0 {
                continue; // degenerate self arc within one copy
            }
            add_dep(&mut b, from, to, dep, new_omega);
        }
    }

    b.meta(LoopMeta {
        basic_blocks: body.meta().basic_blocks,
        min_trip_count: body.meta().min_trip_count.map(|t| t / u64::from(factor)),
    });
    b.finish_with_auto_flow()
}

fn add_dep(b: &mut LoopBuilder, from: crate::OpId, to: crate::OpId, dep: &Dep, omega: u32) {
    b.dep(from, to, dep.kind, dep.via, omega);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DepKind, DepVia, ValueType};

    /// x(i) = x(i-1) * k — a one-op recurrence with a 2-cycle-latency mul.
    fn one_op_recurrence() -> LoopBody {
        let mut b = LoopBuilder::new("rec");
        let k = b.invariant(ValueType::Float, "k");
        let x = b.named_value(ValueType::Float, "x");
        b.op_with_omegas(OpKind::FMul, &[(x, 1), (k, 0)], Some(x), None);
        b.finish_with_auto_flow()
    }

    #[test]
    fn unroll_doubles_ops_and_scales_omegas() {
        let body = one_op_recurrence();
        let unrolled = unroll(&body, 2);
        assert_eq!(unrolled.num_ops(), 2);
        // Copy 0 reads copy 1 at new omega 1; copy 1 reads copy 0 at 0.
        let flows: Vec<(usize, usize, u32)> = unrolled
            .deps()
            .iter()
            .filter(|d| d.is_register_flow())
            .map(|d| (d.from.index(), d.to.index(), d.omega))
            .collect();
        assert!(flows.contains(&(1, 0, 1)), "{flows:?}");
        assert!(flows.contains(&(0, 1, 0)), "{flows:?}");
        assert_eq!(unrolled.validate(), Ok(()));
    }

    #[test]
    fn unroll_by_one_is_identity_shaped() {
        let body = one_op_recurrence();
        let unrolled = unroll(&body, 1);
        assert_eq!(unrolled.num_ops(), body.num_ops());
        assert_eq!(
            unrolled
                .deps()
                .iter()
                .filter(|d| d.is_register_flow())
                .count(),
            body.deps().iter().filter(|d| d.is_register_flow()).count()
        );
    }

    #[test]
    fn deep_distances_split_across_copies() {
        // x(i) = x(i-3) + c, unrolled by 2: copy 0 of iter I is source
        // iteration 2I, reading source 2I-3 = copy 1 of iter I-2.
        let mut b = LoopBuilder::new("deep");
        let c = b.invariant(ValueType::Float, "c");
        let x = b.named_value(ValueType::Float, "x");
        b.op_with_omegas(OpKind::FAdd, &[(x, 3), (c, 0)], Some(x), None);
        let body = b.finish_with_auto_flow();
        let unrolled = unroll(&body, 2);
        let flows: Vec<(usize, usize, u32)> = unrolled
            .deps()
            .iter()
            .filter(|d| d.is_register_flow())
            .map(|d| (d.from.index(), d.to.index(), d.omega))
            .collect();
        assert!(flows.contains(&(1, 0, 2)), "{flows:?}");
        assert!(flows.contains(&(0, 1, 1)), "{flows:?}");
    }

    #[test]
    fn memory_arcs_are_replicated() {
        let mut b = LoopBuilder::new("mem");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let st = b.op(OpKind::Store, &[a, x], None);
        b.dep(ld, st, DepKind::Anti, DepVia::Memory, 2);
        let body = b.finish_with_auto_flow();
        let unrolled = unroll(&body, 2);
        let mems: Vec<u32> = unrolled
            .deps()
            .iter()
            .filter(|d| d.via == DepVia::Memory)
            .map(|d| d.omega)
            .collect();
        assert_eq!(mems.len(), 2, "one replica per copy");
        assert_eq!(unrolled.validate(), Ok(()));
    }

    #[test]
    fn brtop_is_emitted_once() {
        let mut b = LoopBuilder::new("br");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        b.op(OpKind::Load, &[a], Some(x));
        b.op(OpKind::Brtop, &[], None);
        let body = b.finish_with_auto_flow();
        let unrolled = unroll(&body, 3);
        assert_eq!(
            unrolled
                .ops()
                .iter()
                .filter(|o| o.kind == OpKind::Brtop)
                .count(),
            1
        );
        assert_eq!(unrolled.num_ops(), 4);
    }
}
