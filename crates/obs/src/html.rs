//! Self-contained HTML dashboard for the quality observatory.
//!
//! One static page, no JavaScript and no external assets: a summary
//! header, per-backend rollup tables with distribution bars, the
//! per-loop record table, and — when a history ledger is available —
//! inline SVG sparklines of ΣII / ΣMaxLive over past runs.

use crate::{HistorySample, QualityRollup, II_GAP_BUCKETS, MAX_LIVE_BUCKETS};
use std::fmt::Write as _;

/// Renders the dashboard. `history` is the parsed
/// `quality_history.jsonl` ledger (oldest first); pass `&[]` when no
/// ledger exists and the sparkline section is omitted.
pub fn quality_dashboard_html(rollup: &QualityRollup, history: &[HistorySample]) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(
        out,
        "<title>lsms schedule quality — {}</title>",
        esc(&rollup.machine)
    );
    out.push_str(STYLE);
    out.push_str("</head>\n<body>\n");
    let _ = writeln!(
        out,
        "<h1>Schedule quality — <code>{}</code></h1>",
        esc(&rollup.machine)
    );

    // Headline numbers.
    let scheduled: usize = rollup.backends.iter().map(|b| b.scheduled).sum();
    let at_mii: usize = rollup.backends.iter().map(|b| b.at_mii).sum();
    let degraded: usize = rollup.backends.iter().map(|b| b.degraded).sum();
    out.push_str("<div class=\"cards\">\n");
    for (label, value) in [
        ("loops", rollup.loops.to_string()),
        ("records", rollup.records.len().to_string()),
        (
            "scheduled",
            format!("{scheduled} / {}", rollup.records.len()),
        ),
        ("at MII", at_mii.to_string()),
        ("degraded", degraded.to_string()),
        ("&Sigma;II", rollup.ii_sum().to_string()),
        ("&Sigma;MII", rollup.mii_sum().to_string()),
        ("&Sigma;MaxLive", rollup.max_live_sum().to_string()),
    ] {
        let _ = writeln!(
            out,
            "<div class=\"card\"><div class=\"v\">{value}</div><div class=\"k\">{label}</div></div>"
        );
    }
    out.push_str("</div>\n");

    if !history.is_empty() {
        out.push_str("<h2>History</h2>\n<div class=\"sparks\">\n");
        let ii: Vec<u64> = history.iter().map(|s| s.ii_sum).collect();
        let ml: Vec<u64> = history.iter().map(|s| s.max_live_sum).collect();
        sparkline(&mut out, "&Sigma;II", &ii);
        sparkline(&mut out, "&Sigma;MaxLive", &ml);
        out.push_str("</div>\n");
        let _ = writeln!(
            out,
            "<p class=\"note\">{} ledger samples, {} &rarr; {}</p>",
            history.len(),
            esc(&history[0].ts),
            esc(&history[history.len() - 1].ts)
        );
    }

    out.push_str("<h2>Backends</h2>\n");
    out.push_str("<table>\n<tr><th>backend</th><th>loops</th><th>scheduled</th><th>at MII</th><th>degraded</th><th>&Sigma;II</th><th>&Sigma;MII</th><th>II p50/p99</th><th>MaxLive p50/p99/max</th><th>&Sigma;lifetime</th><th>ejected</th><th>backtracks</th><th>wall ms</th></tr>\n");
    for b in &rollup.backends {
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{} / {}</td><td>{} / {} / {}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{:.1}</td></tr>",
            esc(&b.backend),
            b.loops,
            b.scheduled,
            b.at_mii,
            b.degraded,
            b.ii.sum,
            b.mii_sum,
            b.ii.p50,
            b.ii.p99,
            b.max_live.p50,
            b.max_live.p99,
            b.max_live.max,
            b.lifetime_sum.sum,
            b.ejected_ops,
            b.backtracks,
            b.wall_us as f64 / 1000.0,
        );
    }
    out.push_str("</table>\n");

    for b in &rollup.backends {
        let _ = writeln!(
            out,
            "<h3><code>{}</code> distributions</h3>",
            esc(&b.backend)
        );
        out.push_str("<div class=\"dists\">\n");
        histogram(
            &mut out,
            "II &minus; MII",
            II_GAP_BUCKETS,
            &b.ii_gap_buckets,
        );
        histogram(&mut out, "MaxLive", MAX_LIVE_BUCKETS, &b.max_live_buckets);
        out.push_str("</div>\n");
    }

    out.push_str("<h2>Loops</h2>\n");
    out.push_str("<table>\n<tr><th>loop</th><th>backend</th><th>pass</th><th>RecMII</th><th>ResMII</th><th>MII</th><th>II</th><th>gap</th><th>MaxLive</th><th>&Sigma;lt</th><th>mean lt</th><th>max lt</th><th>ejected</th><th>backtracks</th><th>wall &micro;s</th></tr>\n");
    for r in &rollup.records {
        let (ii, class) = match r.ii {
            Some(ii) if ii == r.mii => (ii.to_string(), " class=\"good\""),
            Some(ii) => (ii.to_string(), ""),
            None => (format!("&mdash; ({})", r.last_ii), " class=\"bad\""),
        };
        let degraded = if r.degraded { " &#9888;" } else { "" };
        let _ = writeln!(
            out,
            "<tr{class}><td><code>{}</code></td><td>{}{degraded}</td><td><code>{}</code></td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{ii}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{:.2}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&r.loop_name),
            esc(&r.backend),
            esc(&r.pass),
            r.rec_mii,
            r.res_mii,
            r.mii,
            r.ii_gap(),
            r.max_live,
            r.lifetime_sum,
            r.lifetime_mean(),
            r.lifetime_max,
            r.ejected_ops,
            r.backtracks,
            r.wall_us,
        );
    }
    out.push_str("</table>\n</body>\n</html>\n");
    out
}

/// Inline SVG sparkline of one metric over ledger samples. The y-range
/// is padded so a flat series draws mid-height instead of on the edge.
fn sparkline(out: &mut String, label: &str, values: &[u64]) {
    const W: f64 = 260.0;
    const H: f64 = 48.0;
    const PAD: f64 = 4.0;
    let last = *values.last().unwrap_or(&0);
    let _ = writeln!(
        out,
        "<div class=\"spark\"><div class=\"k\">{label} <span class=\"v\">{last}</span></div>"
    );
    let min = values.iter().copied().min().unwrap_or(0) as f64;
    let max = values.iter().copied().max().unwrap_or(0) as f64;
    let span = if max > min { max - min } else { 1.0 };
    let x = |i: usize| {
        if values.len() < 2 {
            W / 2.0
        } else {
            PAD + (W - 2.0 * PAD) * i as f64 / (values.len() - 1) as f64
        }
    };
    let y = |v: u64| H - PAD - (H - 2.0 * PAD) * (v as f64 - min) / span;
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| format!("{:.1},{:.1}", x(i), y(v)))
        .collect();
    let _ = writeln!(
        out,
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" role=\"img\" aria-label=\"{label} history\">"
    );
    if pts.len() >= 2 {
        let _ = writeln!(
            out,
            "<polyline fill=\"none\" stroke=\"#3465a4\" stroke-width=\"1.5\" points=\"{}\"/>",
            pts.join(" ")
        );
    }
    if let Some(lastpt) = pts.last() {
        let (cx, cy) = lastpt.split_once(',').unwrap_or(("0", "0"));
        let _ = writeln!(
            out,
            "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"2.5\" fill=\"#cc0000\"/>"
        );
    }
    out.push_str("</svg></div>\n");
}

/// Horizontal-bar histogram for one bucketed distribution.
fn histogram(out: &mut String, label: &str, labels: &[&str], counts: &[u64]) {
    let peak = counts.iter().copied().max().unwrap_or(0).max(1);
    let _ = writeln!(out, "<div class=\"dist\"><div class=\"k\">{label}</div>");
    for (l, &c) in labels.iter().zip(counts) {
        let pct = 100.0 * c as f64 / peak as f64;
        let _ = writeln!(
            out,
            "<div class=\"row\"><span class=\"lbl\">{l}</span>\
             <span class=\"bar\" style=\"width: {pct:.0}%\"></span>\
             <span class=\"cnt\">{c}</span></div>"
        );
    }
    out.push_str("</div>\n");
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

const STYLE: &str = "<style>\n\
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 72em; padding: 0 1em; color: #1a1a1a; }\n\
h1, h2, h3 { font-weight: 600; }\n\
code { font: 0.92em/1 ui-monospace, monospace; }\n\
table { border-collapse: collapse; margin: 0.8em 0 1.6em; }\n\
th, td { border: 1px solid #d5d5d5; padding: 0.25em 0.6em; text-align: right; }\n\
th { background: #f2f2f2; }\n\
td:first-child, th:first-child { text-align: left; }\n\
tr.good td { background: #f0f8f0; }\n\
tr.bad td { background: #fcf0f0; }\n\
.cards { display: flex; flex-wrap: wrap; gap: 0.8em; margin: 1em 0; }\n\
.card { border: 1px solid #d5d5d5; border-radius: 6px; padding: 0.5em 1em; min-width: 6em; text-align: center; }\n\
.card .v { font-size: 1.4em; font-weight: 600; }\n\
.card .k, .spark .k, .dist .k { color: #666; font-size: 0.85em; }\n\
.sparks, .dists { display: flex; flex-wrap: wrap; gap: 2em; margin: 0.6em 0; }\n\
.spark .v { color: #1a1a1a; font-weight: 600; }\n\
.dist { min-width: 20em; }\n\
.dist .row { display: flex; align-items: center; gap: 0.5em; margin: 2px 0; }\n\
.dist .lbl { width: 3.5em; text-align: right; color: #666; font-size: 0.85em; }\n\
.dist .bar { background: #3465a4; height: 0.8em; border-radius: 2px; min-width: 1px; }\n\
.dist .cnt { font-size: 0.85em; color: #444; }\n\
.note { color: #666; font-size: 0.9em; }\n\
</style>\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::record;
    use crate::QualityRollup;

    #[test]
    fn dashboard_is_self_contained() {
        let rollup = QualityRollup::new(
            "huff",
            vec![
                record("a", "slack", 2, 2, 5),
                record("b", "cydrome", 3, 5, 9),
            ],
        );
        let history = vec![
            HistorySample {
                ts: "2026-08-07T00:00:00Z".into(),
                records: 2,
                ii_sum: 8,
                mii_sum: 5,
                max_live_sum: 15,
            },
            HistorySample {
                ts: "2026-08-08T00:00:00Z".into(),
                records: 2,
                ii_sum: 7,
                mii_sum: 5,
                max_live_sum: 14,
            },
        ];
        let html = quality_dashboard_html(&rollup, &history);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "sparklines present with history");
        assert!(html.contains("polyline"));
        assert!(!html.contains("<script"), "no JS");
        assert!(!html.contains("http"), "no external assets");
        assert!(html.contains("slack") && html.contains("cydrome"));
        // Without history the sparkline section is dropped entirely.
        let bare = quality_dashboard_html(&rollup, &[]);
        assert!(!bare.contains("<svg"));
    }

    #[test]
    fn html_escapes_names() {
        let mut r = record("a<b>", "slack", 2, 2, 5);
        r.loop_name = "x<&>y".into();
        let html = quality_dashboard_html(&QualityRollup::new("m&m", vec![r]), &[]);
        assert!(html.contains("x&lt;&amp;&gt;y"));
        assert!(html.contains("m&amp;m"));
        assert!(!html.contains("x<&>y"));
    }
}
