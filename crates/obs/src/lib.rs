//! `lsms-obs`: the schedule-quality observatory.
//!
//! The rest of the observability stack answers "where does time go"
//! (`--timings`, `--trace`, `--metrics`); this crate answers "did
//! schedule *quality* regress" — the paper's own evaluation axes:
//! achieved II versus MII and register requirements (MaxLive, lifetime
//! sums).
//!
//! Three artifacts, all dependency-free plain data:
//!
//! * [`ScheduleQuality`] — one record per (loop, backend): the bounds
//!   (RecMII/ResMII/MII), the achieved II and its gap over MII, MaxLive,
//!   lifetime sum/mean/max, ejection and backtrack counts, the
//!   budget-degradation flag, and wall time.
//! * [`QualityRollup`] — the corpus-level aggregation: counts,
//!   distribution buckets, p50/p99 per metric, per-backend breakdown.
//!   Serializes to the `BENCH_quality.json` shape ([`QualityRollup::to_json`])
//!   and to one timestamped ledger line
//!   ([`QualityRollup::history_line`]) for `results/quality_history.jsonl`.
//! * [`diff_quality`] — the regression gate `xtask quality-diff` runs:
//!   exact-count comparison of corpus-wide II and MaxLive sums over two
//!   quality reports, with per-loop attribution of which loops moved and
//!   which backend pass produced them.
//!
//! Everything here is deterministic: records keep their input order,
//! aggregation is order-independent arithmetic, and no timestamp enters
//! [`QualityRollup::to_json`] (the ledger line carries it instead), so
//! two runs that scheduled the same corpus identically produce
//! byte-identical rollups regardless of worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod html;

pub use html::quality_dashboard_html;

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Version stamp of the `BENCH_quality.json` shape and the history
/// ledger lines; bump on any breaking change so `quality-diff` never
/// silently misreads an old artifact.
pub const QUALITY_SCHEMA_VERSION: u32 = 1;

/// One (loop, backend) quality record — the paper's per-loop evaluation
/// unit, kept as data whether the loop pipelined or not.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleQuality {
    /// Loop name.
    pub loop_name: String,
    /// Registry name of the backend that produced the schedule
    /// (`slack`, `cydrome`, ...). When a budget-capped run degraded,
    /// this names the fallback that actually scheduled the loop.
    pub backend: String,
    /// The backend's `schedule:<name>` pass label — the join key into
    /// trace decision events and `--timings` rows.
    pub pass: String,
    /// Recurrence-constrained MII (§3.1).
    pub rec_mii: u32,
    /// Resource-constrained MII.
    pub res_mii: u32,
    /// `max(RecMII, ResMII)`.
    pub mii: u32,
    /// Achieved II, or `None` if the loop failed to pipeline.
    pub ii: Option<u32>,
    /// The last II attempted (equals `ii` on success).
    pub last_ii: u32,
    /// RR-file `MaxLive` of the final schedule (0 when none exists).
    pub max_live: u32,
    /// Σ RR lifetime lengths (0 when no schedule exists).
    pub lifetime_sum: i64,
    /// Longest single RR lifetime.
    pub lifetime_max: i64,
    /// RR values contributing a lifetime (denominator of the mean).
    pub lifetime_count: u32,
    /// Operations ejected from the partial schedule (Step 3 work).
    pub ejected_ops: u64,
    /// Backtracks: Step 3 (ejection) invocations plus Step 6 (II
    /// increment) restarts.
    pub backtracks: u64,
    /// True when the configured backend blew its `--pass-budget` and
    /// this record comes from the degradation fallback.
    pub degraded: bool,
    /// Wall-clock time the scheduler spent on this loop, microseconds.
    pub wall_us: u64,
}

impl ScheduleQuality {
    /// The II this loop contributes to ΣII: achieved or last-attempted
    /// (Table 4's failure convention).
    pub fn counted_ii(&self) -> u64 {
        u64::from(self.ii.unwrap_or(self.last_ii))
    }

    /// `II − MII`: zero for optimally scheduled loops.
    pub fn ii_gap(&self) -> u64 {
        self.counted_ii().saturating_sub(u64::from(self.mii))
    }

    /// Mean RR lifetime length (0.0 when no value carries one).
    pub fn lifetime_mean(&self) -> f64 {
        if self.lifetime_count == 0 {
            0.0
        } else {
            self.lifetime_sum as f64 / f64::from(self.lifetime_count)
        }
    }
}

/// Distribution summary of one per-loop metric within a backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricSummary {
    /// Sum over loops.
    pub sum: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl MetricSummary {
    fn of(values: &mut [u64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        values.sort_unstable();
        Self {
            sum: values.iter().sum(),
            p50: nearest_rank(values, 50),
            p99: nearest_rank(values, 99),
            max: values[values.len() - 1],
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty sample.
fn nearest_rank(sorted: &[u64], p: u64) -> u64 {
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Bucket labels for the II−MII gap distribution.
pub const II_GAP_BUCKETS: &[&str] = &["0", "1", "2", "3-4", "5-8", ">8"];

/// Bucket labels for the MaxLive distribution.
pub const MAX_LIVE_BUCKETS: &[&str] = &["0-4", "5-8", "9-16", "17-32", ">32"];

fn ii_gap_bucket(gap: u64) -> usize {
    match gap {
        0 => 0,
        1 => 1,
        2 => 2,
        3..=4 => 3,
        5..=8 => 4,
        _ => 5,
    }
}

fn max_live_bucket(ml: u64) -> usize {
    match ml {
        0..=4 => 0,
        5..=8 => 1,
        9..=16 => 2,
        17..=32 => 3,
        _ => 4,
    }
}

/// The per-backend slice of a [`QualityRollup`].
#[derive(Clone, Debug, PartialEq)]
pub struct BackendRollup {
    /// Backend registry name.
    pub backend: String,
    /// Records aggregated (one per loop this backend scheduled).
    pub loops: usize,
    /// Loops that pipelined (achieved an II).
    pub scheduled: usize,
    /// Loops scheduled exactly at MII.
    pub at_mii: usize,
    /// Loops this backend scheduled as a budget-degradation fallback.
    pub degraded: usize,
    /// Counted-II distribution.
    pub ii: MetricSummary,
    /// II−MII gap distribution.
    pub ii_gap: MetricSummary,
    /// MaxLive distribution.
    pub max_live: MetricSummary,
    /// Σ lifetime distribution.
    pub lifetime_sum: MetricSummary,
    /// Σ MII over this backend's loops (denominator of II/MII).
    pub mii_sum: u64,
    /// Σ ejected operations.
    pub ejected_ops: u64,
    /// Σ backtracks (Step 3 + Step 6).
    pub backtracks: u64,
    /// Σ scheduler wall time, microseconds.
    pub wall_us: u64,
    /// II−MII gap histogram, bucketed per [`II_GAP_BUCKETS`].
    pub ii_gap_buckets: Vec<u64>,
    /// MaxLive histogram, bucketed per [`MAX_LIVE_BUCKETS`].
    pub max_live_buckets: Vec<u64>,
}

/// The corpus-level aggregation of every [`ScheduleQuality`] record one
/// run produced, plus the records themselves (the diff gate needs
/// per-loop attribution, so they serialize too).
#[derive(Clone, Debug, PartialEq)]
pub struct QualityRollup {
    /// Target machine name, for the report header.
    pub machine: String,
    /// Every record, in input (corpus) order.
    pub records: Vec<ScheduleQuality>,
    /// Distinct loop names.
    pub loops: usize,
    /// Per-backend aggregation, in first-appearance order.
    pub backends: Vec<BackendRollup>,
}

impl QualityRollup {
    /// Aggregates records (kept in input order; backends appear in
    /// first-record order, so the rollup is deterministic whenever the
    /// record order is).
    pub fn new(machine: &str, records: Vec<ScheduleQuality>) -> Self {
        let loops = records
            .iter()
            .map(|r| r.loop_name.as_str())
            .collect::<BTreeSet<_>>()
            .len();
        let mut backends: Vec<BackendRollup> = Vec::new();
        for r in &records {
            if !backends.iter().any(|b| b.backend == r.backend) {
                backends.push(BackendRollup {
                    backend: r.backend.clone(),
                    loops: 0,
                    scheduled: 0,
                    at_mii: 0,
                    degraded: 0,
                    ii: MetricSummary::default(),
                    ii_gap: MetricSummary::default(),
                    max_live: MetricSummary::default(),
                    lifetime_sum: MetricSummary::default(),
                    mii_sum: 0,
                    ejected_ops: 0,
                    backtracks: 0,
                    wall_us: 0,
                    ii_gap_buckets: vec![0; II_GAP_BUCKETS.len()],
                    max_live_buckets: vec![0; MAX_LIVE_BUCKETS.len()],
                });
            }
        }
        for b in &mut backends {
            let mine: Vec<&ScheduleQuality> =
                records.iter().filter(|r| r.backend == b.backend).collect();
            b.loops = mine.len();
            b.scheduled = mine.iter().filter(|r| r.ii.is_some()).count();
            b.at_mii = mine.iter().filter(|r| r.ii == Some(r.mii)).count();
            b.degraded = mine.iter().filter(|r| r.degraded).count();
            b.mii_sum = mine.iter().map(|r| u64::from(r.mii)).sum();
            b.ejected_ops = mine.iter().map(|r| r.ejected_ops).sum();
            b.backtracks = mine.iter().map(|r| r.backtracks).sum();
            b.wall_us = mine.iter().map(|r| r.wall_us).sum();
            b.ii = MetricSummary::of(&mut mine.iter().map(|r| r.counted_ii()).collect::<Vec<_>>());
            b.ii_gap = MetricSummary::of(&mut mine.iter().map(|r| r.ii_gap()).collect::<Vec<_>>());
            b.max_live = MetricSummary::of(
                &mut mine
                    .iter()
                    .map(|r| u64::from(r.max_live))
                    .collect::<Vec<_>>(),
            );
            b.lifetime_sum = MetricSummary::of(
                &mut mine
                    .iter()
                    .map(|r| r.lifetime_sum.max(0) as u64)
                    .collect::<Vec<_>>(),
            );
            for r in &mine {
                b.ii_gap_buckets[ii_gap_bucket(r.ii_gap())] += 1;
                b.max_live_buckets[max_live_bucket(u64::from(r.max_live))] += 1;
            }
        }
        Self {
            machine: machine.to_owned(),
            records,
            loops,
            backends,
        }
    }

    /// Corpus-wide ΣII over every record (the diff gate's first axis).
    pub fn ii_sum(&self) -> u64 {
        self.records.iter().map(ScheduleQuality::counted_ii).sum()
    }

    /// Corpus-wide ΣMII over every record.
    pub fn mii_sum(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.mii)).sum()
    }

    /// Corpus-wide ΣMaxLive over every record (the second gate axis).
    pub fn max_live_sum(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.max_live)).sum()
    }

    /// Serializes the `BENCH_quality.json` shape: one per-loop record per
    /// line under `"loops"`, then the aggregated `"rollup"`. Contains no
    /// timestamp — only [`history_line`](Self::history_line) carries one —
    /// so identical scheduling work yields byte-identical reports.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema_version\": {QUALITY_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"kind\": \"lsms-quality\",");
        let _ = writeln!(out, "  \"machine\": \"{}\",", self.machine);
        let _ = writeln!(out, "  \"loops\": [");
        for (i, r) in self.records.iter().enumerate() {
            let ii = r.ii.map_or("null".to_owned(), |ii| ii.to_string());
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"backend\": \"{}\", \"pass\": \"{}\", \
                 \"rec_mii\": {}, \"res_mii\": {}, \"mii\": {}, \"ii\": {ii}, \
                 \"counted_ii\": {}, \"ii_gap\": {}, \"max_live\": {}, \
                 \"lifetime_sum\": {}, \"lifetime_mean\": {:.2}, \"lifetime_max\": {}, \
                 \"ejected_ops\": {}, \"backtracks\": {}, \"degraded\": {}, \
                 \"wall_us\": {}}}{}",
                r.loop_name,
                r.backend,
                r.pass,
                r.rec_mii,
                r.res_mii,
                r.mii,
                r.counted_ii(),
                r.ii_gap(),
                r.max_live,
                r.lifetime_sum,
                r.lifetime_mean(),
                r.lifetime_max,
                r.ejected_ops,
                r.backtracks,
                r.degraded,
                r.wall_us,
                if i + 1 == self.records.len() { "" } else { "," }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"rollup\": {{");
        let _ = writeln!(out, "    \"loops\": {},", self.loops);
        let _ = writeln!(out, "    \"records\": {},", self.records.len());
        let _ = writeln!(out, "    \"ii_sum\": {},", self.ii_sum());
        let _ = writeln!(out, "    \"mii_sum\": {},", self.mii_sum());
        let _ = writeln!(out, "    \"max_live_sum\": {},", self.max_live_sum());
        let _ = writeln!(out, "    \"backends\": [");
        for (i, b) in self.backends.iter().enumerate() {
            let _ = writeln!(out, "      {{");
            let _ = writeln!(out, "        \"backend\": \"{}\",", b.backend);
            let _ = writeln!(
                out,
                "        \"loops\": {}, \"scheduled\": {}, \"at_mii\": {}, \"degraded\": {},",
                b.loops, b.scheduled, b.at_mii, b.degraded
            );
            let _ = writeln!(
                out,
                "        \"mii_sum\": {}, \"ejected_ops\": {}, \"backtracks\": {}, \"wall_us\": {},",
                b.mii_sum, b.ejected_ops, b.backtracks, b.wall_us
            );
            for (key, m) in [
                ("ii", &b.ii),
                ("ii_gap", &b.ii_gap),
                ("max_live", &b.max_live),
                ("lifetime_sum", &b.lifetime_sum),
            ] {
                let _ = writeln!(
                    out,
                    "        \"{key}\": {{\"sum\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}},",
                    m.sum, m.p50, m.p99, m.max
                );
            }
            let _ = writeln!(
                out,
                "        \"ii_gap_buckets\": {{{}}},",
                bucket_pairs(II_GAP_BUCKETS, &b.ii_gap_buckets)
            );
            let _ = writeln!(
                out,
                "        \"max_live_buckets\": {{{}}}",
                bucket_pairs(MAX_LIVE_BUCKETS, &b.max_live_buckets)
            );
            let _ = writeln!(
                out,
                "      }}{}",
                if i + 1 == self.backends.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        let _ = writeln!(out, "    ]");
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// One timestamped ledger line for `results/quality_history.jsonl`:
    /// the corpus-wide sums plus per-backend sums, small enough to append
    /// forever and parse with [`parse_history`].
    pub fn history_line(&self, ts_iso: &str) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"ts\": \"{ts_iso}\", \"schema_version\": {QUALITY_SCHEMA_VERSION}, \
             \"machine\": \"{}\", \"loops\": {}, \"records\": {}, \"ii_sum\": {}, \
             \"mii_sum\": {}, \"max_live_sum\": {}, \"backends\": [",
            self.machine,
            self.loops,
            self.records.len(),
            self.ii_sum(),
            self.mii_sum(),
            self.max_live_sum(),
        );
        for (i, b) in self.backends.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"backend\": \"{}\", \"ii_sum\": {}, \"max_live_sum\": {}}}",
                if i == 0 { "" } else { ", " },
                b.backend,
                b.ii.sum,
                b.max_live.sum
            );
        }
        out.push_str("]}");
        out
    }
}

fn bucket_pairs(labels: &[&str], counts: &[u64]) -> String {
    labels
        .iter()
        .zip(counts)
        .map(|(l, c)| format!("\"{l}\": {c}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// One parsed ledger sample (see [`parse_history`]).
#[derive(Clone, Debug, PartialEq)]
pub struct HistorySample {
    /// ISO-8601 UTC timestamp the line was appended at.
    pub ts: String,
    /// Records in that run.
    pub records: u64,
    /// Corpus-wide ΣII.
    pub ii_sum: u64,
    /// Corpus-wide ΣMII.
    pub mii_sum: u64,
    /// Corpus-wide ΣMaxLive.
    pub max_live_sum: u64,
}

/// Parses a `quality_history.jsonl` ledger: one [`HistorySample`] per
/// well-formed line, unparseable lines skipped (the ledger is
/// append-only across schema versions).
pub fn parse_history(text: &str) -> Vec<HistorySample> {
    text.lines()
        .filter_map(|line| {
            Some(HistorySample {
                ts: scan_str(line, "\"ts\": \"")?,
                records: scan_u64(line, "\"records\": ")?,
                ii_sum: scan_u64(line, "\"ii_sum\": ")?,
                mii_sum: scan_u64(line, "\"mii_sum\": ")?,
                max_live_sum: scan_u64(line, "\"max_live_sum\": ")?,
            })
        })
        .collect()
}

fn scan_str(line: &str, key: &str) -> Option<String> {
    line.split(key).nth(1)?.split('"').next().map(str::to_owned)
}

fn scan_u64(line: &str, key: &str) -> Option<u64> {
    line.split(key)
        .nth(1)?
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

/// Formats a unix timestamp (seconds) as ISO-8601 UTC
/// (`2026-08-08T12:34:56Z`), dependency-free.
pub fn iso8601_utc(unix_secs: u64) -> String {
    let days = unix_secs / 86_400;
    let secs = unix_secs % 86_400;
    // Howard Hinnant's civil_from_days, shifted so the era starts on
    // 0000-03-01 (unix day 0 is 1970-01-01 = day 719468 of that era).
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// One per-loop record parsed back out of a quality report (the subset
/// the diff gate needs).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRecord {
    /// Loop name.
    pub name: String,
    /// Backend registry name.
    pub backend: String,
    /// The `schedule:<name>` pass label (trace/timings join key).
    pub pass: String,
    /// Counted II (achieved or last-attempted).
    pub counted_ii: u64,
    /// RR MaxLive.
    pub max_live: u64,
}

/// Extracts the per-loop records from a `BENCH_quality.json` report.
/// The format is this crate's own fixed emission (one record per line),
/// so a targeted scan suffices; surrounding rollup lines are ignored.
pub fn parse_quality(json: &str) -> Vec<ParsedRecord> {
    json.lines()
        .filter_map(|line| {
            let line = line.trim();
            if !line.starts_with("{\"name\": \"") {
                return None;
            }
            Some(ParsedRecord {
                name: scan_str(line, "\"name\": \"")?,
                backend: scan_str(line, "\"backend\": \"")?,
                pass: scan_str(line, "\"pass\": \"")?,
                counted_ii: scan_u64(line, "\"counted_ii\": ")?,
                max_live: scan_u64(line, "\"max_live\": ")?,
            })
        })
        .collect()
}

/// One loop whose quality moved between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct MovedLoop {
    /// Loop name.
    pub name: String,
    /// Backend registry name.
    pub backend: String,
    /// Pass label that produced the new schedule.
    pub pass: String,
    /// Counted II before.
    pub ii_old: u64,
    /// Counted II after.
    pub ii_new: u64,
    /// MaxLive before.
    pub max_live_old: u64,
    /// MaxLive after.
    pub max_live_new: u64,
}

impl MovedLoop {
    /// True when either axis got worse for this loop.
    pub fn worsened(&self) -> bool {
        self.ii_new > self.ii_old || self.max_live_new > self.max_live_old
    }
}

/// The verdict of comparing two quality reports over their common
/// (loop, backend) records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QualityDiff {
    /// Records present in both reports (the comparison universe).
    pub compared: usize,
    /// Records only the old report has (corpus shrank or was renamed).
    pub only_old: usize,
    /// Records only the new report has.
    pub only_new: usize,
    /// ΣII over compared records, old run.
    pub ii_sum_old: u64,
    /// ΣII over compared records, new run.
    pub ii_sum_new: u64,
    /// ΣMaxLive over compared records, old run.
    pub max_live_sum_old: u64,
    /// ΣMaxLive over compared records, new run.
    pub max_live_sum_new: u64,
    /// Every compared record whose II or MaxLive changed, in new-report
    /// order (regressions and improvements both — the attribution list).
    pub moved: Vec<MovedLoop>,
}

impl QualityDiff {
    /// The exact-count gate: any corpus-wide increase in ΣII or ΣMaxLive
    /// over the common records is a regression. Schedule quality is
    /// deterministic, so there is no noise floor to allow for.
    pub fn regressed(&self) -> bool {
        self.ii_sum_new > self.ii_sum_old || self.max_live_sum_new > self.max_live_sum_old
    }
}

/// Compares two parsed quality reports by (loop, backend) key. Records
/// missing from either side are counted but never gate — a resized
/// corpus must not masquerade as a regression or an improvement.
pub fn diff_quality(old: &[ParsedRecord], new: &[ParsedRecord]) -> QualityDiff {
    let key = |r: &ParsedRecord| (r.name.clone(), r.backend.clone());
    let old_keys: BTreeSet<_> = old.iter().map(key).collect();
    let new_keys: BTreeSet<_> = new.iter().map(key).collect();
    let mut diff = QualityDiff {
        only_old: old_keys.difference(&new_keys).count(),
        only_new: new_keys.difference(&old_keys).count(),
        ..QualityDiff::default()
    };
    for n in new {
        let Some(o) = old
            .iter()
            .find(|o| o.name == n.name && o.backend == n.backend)
        else {
            continue;
        };
        diff.compared += 1;
        diff.ii_sum_old += o.counted_ii;
        diff.ii_sum_new += n.counted_ii;
        diff.max_live_sum_old += o.max_live;
        diff.max_live_sum_new += n.max_live;
        if n.counted_ii != o.counted_ii || n.max_live != o.max_live {
            diff.moved.push(MovedLoop {
                name: n.name.clone(),
                backend: n.backend.clone(),
                pass: n.pass.clone(),
                ii_old: o.counted_ii,
                ii_new: n.counted_ii,
                max_live_old: o.max_live,
                max_live_new: n.max_live,
            });
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn record(
        name: &str,
        backend: &str,
        mii: u32,
        ii: u32,
        max_live: u32,
    ) -> ScheduleQuality {
        ScheduleQuality {
            loop_name: name.to_owned(),
            backend: backend.to_owned(),
            pass: format!("schedule:{backend}"),
            rec_mii: mii,
            res_mii: 1,
            mii,
            ii: Some(ii),
            last_ii: ii,
            max_live,
            lifetime_sum: i64::from(max_live) * 3,
            lifetime_max: i64::from(max_live),
            lifetime_count: 3,
            ejected_ops: 1,
            backtracks: 2,
            degraded: false,
            wall_us: 100,
        }
    }

    #[test]
    fn rollup_aggregates_per_backend() {
        let rollup = QualityRollup::new(
            "huff",
            vec![
                record("a", "slack", 2, 2, 5),
                record("b", "slack", 3, 4, 9),
                record("a", "cydrome", 2, 3, 6),
            ],
        );
        assert_eq!(rollup.loops, 2);
        assert_eq!(rollup.ii_sum(), 9);
        assert_eq!(rollup.mii_sum(), 7);
        assert_eq!(rollup.max_live_sum(), 20);
        assert_eq!(rollup.backends.len(), 2);
        let slack = &rollup.backends[0];
        assert_eq!(slack.backend, "slack");
        assert_eq!((slack.loops, slack.scheduled, slack.at_mii), (2, 2, 1));
        assert_eq!(slack.ii.sum, 6);
        assert_eq!(slack.ii_gap.sum, 1);
        assert_eq!(slack.max_live.max, 9);
        assert_eq!(slack.ii_gap_buckets[0], 1); // a at MII
        assert_eq!(slack.ii_gap_buckets[1], 1); // b one over
        assert_eq!(slack.max_live_buckets[0], 0);
        assert_eq!(slack.max_live_buckets[1], 1); // 5
        assert_eq!(slack.max_live_buckets[2], 1); // 9
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        let m = MetricSummary::of(&mut v);
        assert_eq!((m.p50, m.p99, m.max), (50, 99, 100));
        let mut v = vec![7];
        let m = MetricSummary::of(&mut v);
        assert_eq!((m.p50, m.p99, m.max, m.sum), (7, 7, 7, 7));
    }

    #[test]
    fn json_round_trips_through_parse_quality() {
        let rollup = QualityRollup::new(
            "huff",
            vec![
                record("a", "slack", 2, 2, 5),
                ScheduleQuality {
                    ii: None,
                    last_ii: 9,
                    ..record("b", "slack", 3, 4, 0)
                },
            ],
        );
        let json = rollup.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"ii\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let parsed = parse_quality(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a");
        assert_eq!(parsed[0].counted_ii, 2);
        assert_eq!(parsed[0].max_live, 5);
        assert_eq!(parsed[1].counted_ii, 9, "failures count last_ii");
        assert_eq!(parsed[1].pass, "schedule:slack");
    }

    #[test]
    fn history_line_round_trips() {
        let rollup = QualityRollup::new("huff", vec![record("a", "slack", 2, 3, 5)]);
        let line = rollup.history_line("2026-08-08T00:00:00Z");
        let samples = parse_history(&format!("garbage\n{line}\n"));
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].ts, "2026-08-08T00:00:00Z");
        assert_eq!(samples[0].ii_sum, 3);
        assert_eq!(samples[0].max_live_sum, 5);
    }

    #[test]
    fn iso_timestamps_are_civil() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso8601_utc(1_786_147_200), "2026-08-08T00:00:00Z");
        assert_eq!(iso8601_utc(1_786_190_706), "2026-08-08T12:05:06Z");
    }

    #[test]
    fn diff_gates_on_exact_sums_and_attributes_loops() {
        let base = QualityRollup::new(
            "huff",
            vec![record("a", "slack", 2, 2, 5), record("b", "slack", 3, 3, 9)],
        );
        let old = parse_quality(&base.to_json());

        // Unchanged rerun: clean.
        let same = diff_quality(&old, &old);
        assert!(!same.regressed());
        assert!(same.moved.is_empty());
        assert_eq!(same.compared, 2);

        // One loop's II slips by one: the gate trips and names the loop.
        let worse = QualityRollup::new(
            "huff",
            vec![record("a", "slack", 2, 3, 5), record("b", "slack", 3, 3, 9)],
        );
        let diff = diff_quality(&old, &parse_quality(&worse.to_json()));
        assert!(diff.regressed());
        assert_eq!(diff.moved.len(), 1);
        assert_eq!(diff.moved[0].name, "a");
        assert_eq!((diff.moved[0].ii_old, diff.moved[0].ii_new), (2, 3));
        assert!(diff.moved[0].worsened());

        // MaxLive regression alone also trips.
        let pressure = QualityRollup::new(
            "huff",
            vec![record("a", "slack", 2, 2, 6), record("b", "slack", 3, 3, 9)],
        );
        assert!(diff_quality(&old, &parse_quality(&pressure.to_json())).regressed());

        // Improvement never trips.
        let better = QualityRollup::new(
            "huff",
            vec![record("a", "slack", 2, 2, 4), record("b", "slack", 3, 3, 9)],
        );
        let diff = diff_quality(&old, &parse_quality(&better.to_json()));
        assert!(!diff.regressed());
        assert_eq!(diff.moved.len(), 1);
        assert!(!diff.moved[0].worsened());
    }

    #[test]
    fn diff_ignores_corpus_resizes() {
        let old = parse_quality(
            &QualityRollup::new(
                "huff",
                vec![record("a", "slack", 2, 2, 5), record("b", "slack", 3, 3, 9)],
            )
            .to_json(),
        );
        // The corpus shrank to one loop: sums are computed over the
        // intersection, so nothing regresses.
        let new = parse_quality(
            &QualityRollup::new("huff", vec![record("a", "slack", 2, 2, 5)]).to_json(),
        );
        let diff = diff_quality(&old, &new);
        assert!(!diff.regressed());
        assert_eq!((diff.compared, diff.only_old, diff.only_new), (1, 1, 0));
    }
}
