//! The modulo resource table (MRT).

use lsms_ir::OpId;

use crate::{Machine, OpDesc};

/// The `II`-entry table that enforces the modulo constraint: *no resource
/// may be used more than once at the same time modulo the initiation
/// interval* (§1).
///
/// Placing an operation at cycle `t` commits its unit instance at every
/// cycle `t + r (mod II)` for each reservation offset `r` — equivalently at
/// `t + r + k·II` for all `k`, which is why an operation that does not fit
/// at one cycle might not fit at *any* later cycle (§4).
#[derive(Clone, Debug)]
pub struct Mrt {
    ii: u32,
    /// `slots[class][instance][cycle % ii]` = occupying op, if any.
    slots: Vec<Vec<Vec<Option<OpId>>>>,
}

impl Mrt {
    /// Creates an empty table for the given machine and candidate II.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn new(machine: &Machine, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let slots = machine
            .classes()
            .iter()
            .map(|c| vec![vec![None; ii as usize]; c.count as usize])
            .collect();
        Self { ii, slots }
    }

    /// The initiation interval this table enforces.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn cell(&self, desc: &OpDesc, instance: u32, time: i64, offset: u32) -> (usize, usize, usize) {
        debug_assert!(time >= 0, "operations issue at non-negative cycles");
        let cycle = (time + i64::from(offset)).rem_euclid(i64::from(self.ii)) as usize;
        (desc.class.index(), instance as usize, cycle)
    }

    /// The distinct operations (other than `this`) whose reservations
    /// collide with placing `this` at `time` on `instance`.
    pub fn conflicts(&self, this: OpId, desc: &OpDesc, instance: u32, time: i64) -> Vec<OpId> {
        let mut out = Vec::new();
        for &r in &desc.reservation {
            let (c, u, cyc) = self.cell(desc, instance, time, r);
            if let Some(occ) = self.slots[c][u][cyc] {
                if occ != this && !out.contains(&occ) {
                    out.push(occ);
                }
            }
        }
        out
    }

    /// True if `this` can be placed at `time` without displacing anyone.
    ///
    /// A reservation pattern longer than II collides with *itself* when two
    /// offsets coincide modulo II; self-collisions are permitted (the same
    /// operation occupies the slot), matching the behaviour of a
    /// non-pipelined unit that is simply busy.
    pub fn fits(&self, this: OpId, desc: &OpDesc, instance: u32, time: i64) -> bool {
        self.conflicts(this, desc, instance, time).is_empty()
    }

    /// Records `this` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if any needed slot is held by a different operation; call
    /// [`fits`](Self::fits) or eject conflicting operations first.
    pub fn place(&mut self, this: OpId, desc: &OpDesc, instance: u32, time: i64) {
        for (c, u, cyc) in self.cells(desc, instance, time) {
            let slot = &mut self.slots[c][u][cyc];
            assert!(
                slot.is_none() || *slot == Some(this),
                "MRT slot ({c},{u},{cyc}) already held by {:?}",
                slot.unwrap()
            );
            *slot = Some(this);
        }
    }

    /// The distinct cells the pattern touches; offsets of a pattern longer
    /// than II can coincide modulo II and must be visited once.
    fn cells(&self, desc: &OpDesc, instance: u32, time: i64) -> Vec<(usize, usize, usize)> {
        let mut cells: Vec<_> = desc
            .reservation
            .iter()
            .map(|&r| self.cell(desc, instance, time, r))
            .collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// Releases the slots `this` held at `time`.
    ///
    /// # Panics
    ///
    /// Panics if a slot is not actually held by `this` — a sign the caller's
    /// bookkeeping of placement times has drifted from the table.
    pub fn remove(&mut self, this: OpId, desc: &OpDesc, instance: u32, time: i64) {
        for (c, u, cyc) in self.cells(desc, instance, time) {
            let slot = &mut self.slots[c][u][cyc];
            assert_eq!(*slot, Some(this), "MRT slot ({c},{u},{cyc}) not held by {this}");
            *slot = None;
        }
    }

    /// Total number of occupied slots (distinct (class, instance, cycle)
    /// cells), for diagnostics.
    pub fn occupancy(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .flatten()
            .filter(|s| s.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huff_machine;
    use lsms_ir::OpKind;

    #[test]
    fn same_slot_modulo_ii_conflicts() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 4);
        let desc = m.desc(OpKind::FAdd).clone();
        let a = OpId::new(0);
        let b = OpId::new(1);
        mrt.place(a, &desc, 0, 2);
        assert!(!mrt.fits(b, &desc, 0, 6), "2 and 6 coincide mod 4");
        assert!(mrt.fits(b, &desc, 0, 3));
        assert_eq!(mrt.conflicts(b, &desc, 0, 6), vec![a]);
    }

    #[test]
    fn distinct_instances_do_not_conflict() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 2);
        let desc = m.desc(OpKind::Load).clone();
        mrt.place(OpId::new(0), &desc, 0, 0);
        assert!(mrt.fits(OpId::new(1), &desc, 1, 0));
        assert!(!mrt.fits(OpId::new(1), &desc, 0, 0));
    }

    #[test]
    fn unpipelined_pattern_blocks_whole_window() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 40);
        let div = m.desc(OpKind::FDiv).clone();
        let add_like_div = m.desc(OpKind::IntDiv).clone();
        mrt.place(OpId::new(0), &div, 0, 0);
        // Any divider issue in cycles 0..17 collides.
        for t in 0..17 {
            assert!(!mrt.fits(OpId::new(1), &add_like_div, 0, t), "cycle {t}");
        }
        // At cycle 17 the second divide occupies 17..34 — disjoint mod 40.
        assert!(mrt.fits(OpId::new(1), &add_like_div, 0, 17));
        // A second divide can never coexist below II = 34: at II = 20 every
        // issue cycle wraps into the first divide's window.
        let tight = Mrt::new(&m, 20);
        let mut tight2 = tight.clone();
        tight2.place(OpId::new(0), &div, 0, 0);
        assert!((0..20).all(|t| !tight2.fits(OpId::new(1), &add_like_div, 0, t)));
    }

    #[test]
    fn self_collision_of_long_pattern_is_allowed() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 17);
        let sqrt = m.desc(OpKind::FSqrt).clone(); // 21 offsets > II = 17
        let op = OpId::new(0);
        assert!(mrt.fits(op, &sqrt, 0, 0));
        mrt.place(op, &sqrt, 0, 0);
        // All 17 cycles of the divider are busy; occupancy counts cells.
        assert_eq!(mrt.occupancy(), 17);
        mrt.remove(op, &sqrt, 0, 0);
        assert_eq!(mrt.occupancy(), 0);
    }

    #[test]
    fn place_then_remove_round_trips() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 3);
        let desc = m.desc(OpKind::FMul).clone();
        let op = OpId::new(5);
        mrt.place(op, &desc, 0, 7);
        assert_eq!(mrt.occupancy(), 1);
        mrt.remove(op, &desc, 0, 7);
        assert!(mrt.fits(OpId::new(6), &desc, 0, 7));
    }

    #[test]
    #[should_panic(expected = "already held")]
    fn double_place_panics() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 2);
        let desc = m.desc(OpKind::FAdd).clone();
        mrt.place(OpId::new(0), &desc, 0, 0);
        mrt.place(OpId::new(1), &desc, 0, 2);
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_panics() {
        let _ = Mrt::new(&huff_machine(), 0);
    }
}
