//! The modulo resource table (MRT).

use lsms_ir::OpId;

use crate::{Machine, OpDesc};

/// The `II`-entry table that enforces the modulo constraint: *no resource
/// may be used more than once at the same time modulo the initiation
/// interval* (§1).
///
/// Placing an operation at cycle `t` commits its unit instance at every
/// cycle `t + r (mod II)` for each reservation offset `r` — equivalently at
/// `t + r + k·II` for all `k`, which is why an operation that does not fit
/// at one cycle might not fit at *any* later cycle (§4).
///
/// # Layout
///
/// Cells live in one flat row-major arena indexed
/// `class_base[class] + instance·II + cycle`, with a parallel one-bit-per-
/// cell occupancy bitset. [`fits`](Self::fits) — the scheduler's hottest
/// query — ORs the occupancy bits of the reservation pattern and only
/// consults the occupant arena when some bit is set (to permit
/// self-collisions), and neither it nor [`conflicts_into`](Self::conflicts_into)
/// allocates.
#[derive(Clone, Debug)]
pub struct Mrt {
    ii: u32,
    /// Arena offset of each class's first cell; classes with `count`
    /// instances span `count · II` consecutive cells.
    class_base: Vec<usize>,
    /// Occupying op per cell, if any.
    occupant: Vec<Option<OpId>>,
    /// One bit per cell, mirroring `occupant[i].is_some()`.
    occupied: Vec<u64>,
}

impl Mrt {
    /// Creates an empty table for the given machine and candidate II.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn new(machine: &Machine, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let mut class_base = Vec::with_capacity(machine.classes().len());
        let mut total = 0usize;
        for c in machine.classes() {
            class_base.push(total);
            total += c.count as usize * ii as usize;
        }
        Self {
            ii,
            class_base,
            occupant: vec![None; total],
            occupied: vec![0; total.div_ceil(64)],
        }
    }

    /// The initiation interval this table enforces.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Re-initializes the table in place for a (possibly different) II,
    /// reusing the arena allocations — the II-escalation equivalent of
    /// [`new`](Self::new) without the three fresh `Vec`s per attempt.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn reset(&mut self, machine: &Machine, ii: u32) {
        assert!(ii > 0, "II must be positive");
        self.ii = ii;
        self.class_base.clear();
        let mut total = 0usize;
        for c in machine.classes() {
            self.class_base.push(total);
            total += c.count as usize * ii as usize;
        }
        self.occupant.clear();
        self.occupant.resize(total, None);
        self.occupied.clear();
        self.occupied.resize(total.div_ceil(64), 0);
    }

    #[inline]
    fn idx(&self, desc: &OpDesc, instance: u32, time: i64, offset: u32) -> usize {
        debug_assert!(time >= 0, "operations issue at non-negative cycles");
        let cycle = (time + i64::from(offset)).rem_euclid(i64::from(self.ii)) as usize;
        self.class_base[desc.class.index()] + instance as usize * self.ii as usize + cycle
    }

    /// The kernel cycle an arena index denotes, for panic messages.
    fn describe(&self, desc: &OpDesc, instance: u32, i: usize) -> (usize, usize, usize) {
        (
            desc.class.index(),
            instance as usize,
            i - self.class_base[desc.class.index()] - instance as usize * self.ii as usize,
        )
    }

    #[inline]
    fn bit(&self, i: usize) -> u64 {
        (self.occupied[i >> 6] >> (i & 63)) & 1
    }

    #[inline]
    fn set_bit(&mut self, i: usize, on: bool) {
        if on {
            self.occupied[i >> 6] |= 1 << (i & 63);
        } else {
            self.occupied[i >> 6] &= !(1 << (i & 63));
        }
    }

    /// The distinct operations (other than `this`) whose reservations
    /// collide with placing `this` at `time` on `instance`.
    ///
    /// Allocating wrapper around [`conflicts_into`](Self::conflicts_into).
    pub fn conflicts(&self, this: OpId, desc: &OpDesc, instance: u32, time: i64) -> Vec<OpId> {
        let mut out = Vec::new();
        self.conflicts_into(this, desc, instance, time, &mut out);
        out
    }

    /// As [`conflicts`](Self::conflicts), but appends into a caller-owned
    /// list (cleared first) so hot paths can reuse one buffer.
    pub fn conflicts_into(
        &self,
        this: OpId,
        desc: &OpDesc,
        instance: u32,
        time: i64,
        out: &mut Vec<OpId>,
    ) {
        out.clear();
        for &r in &desc.reservation {
            let i = self.idx(desc, instance, time, r);
            if let Some(occ) = self.occupant[i] {
                if occ != this && !out.contains(&occ) {
                    out.push(occ);
                }
            }
        }
    }

    /// True when some reservation cell is held by `needle` — equivalent to
    /// `conflicts(..).contains(&needle)` without building the list.
    pub fn conflicts_contain(
        &self,
        this: OpId,
        desc: &OpDesc,
        instance: u32,
        time: i64,
        needle: OpId,
    ) -> bool {
        needle != this
            && desc
                .reservation
                .iter()
                .any(|&r| self.occupant[self.idx(desc, instance, time, r)] == Some(needle))
    }

    /// True if `this` can be placed at `time` without displacing anyone.
    ///
    /// A reservation pattern longer than II collides with *itself* when two
    /// offsets coincide modulo II; self-collisions are permitted (the same
    /// operation occupies the slot), matching the behaviour of a
    /// non-pipelined unit that is simply busy.
    pub fn fits(&self, this: OpId, desc: &OpDesc, instance: u32, time: i64) -> bool {
        // Fast path: fold the occupancy bits without branching per offset.
        // Almost every query during the scheduler's cycle scan resolves
        // here — the pattern lands on wholly free cells.
        let mut busy = 0u64;
        for &r in &desc.reservation {
            busy |= self.bit(self.idx(desc, instance, time, r));
        }
        if busy == 0 {
            return true;
        }
        // Some cell is taken; it only blocks if held by a different op.
        desc.reservation.iter().all(
            |&r| match self.occupant[self.idx(desc, instance, time, r)] {
                None => true,
                Some(occ) => occ == this,
            },
        )
    }

    /// Records `this` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if any needed slot is held by a different operation; call
    /// [`fits`](Self::fits) or eject conflicting operations first.
    pub fn place(&mut self, this: OpId, desc: &OpDesc, instance: u32, time: i64) {
        // Two passes — check everything, then commit everything — so a
        // pattern whose offsets coincide modulo II needs no dedup list.
        for &r in &desc.reservation {
            let i = self.idx(desc, instance, time, r);
            let slot = self.occupant[i];
            assert!(
                slot.is_none() || slot == Some(this),
                "MRT slot {:?} already held by {:?}",
                self.describe(desc, instance, i),
                slot.unwrap()
            );
        }
        for &r in &desc.reservation {
            let i = self.idx(desc, instance, time, r);
            self.occupant[i] = Some(this);
            self.set_bit(i, true);
        }
    }

    /// Releases the slots `this` held at `time`.
    ///
    /// # Panics
    ///
    /// Panics if a slot is not actually held by `this` — a sign the caller's
    /// bookkeeping of placement times has drifted from the table.
    pub fn remove(&mut self, this: OpId, desc: &OpDesc, instance: u32, time: i64) {
        for &r in &desc.reservation {
            let i = self.idx(desc, instance, time, r);
            assert_eq!(
                self.occupant[i],
                Some(this),
                "MRT slot {:?} not held by {this}",
                self.describe(desc, instance, i)
            );
        }
        for &r in &desc.reservation {
            let i = self.idx(desc, instance, time, r);
            self.occupant[i] = None;
            self.set_bit(i, false);
        }
    }

    /// Total number of occupied slots (distinct (class, instance, cycle)
    /// cells), for diagnostics.
    pub fn occupancy(&self) -> usize {
        self.occupied.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huff_machine;
    use lsms_ir::OpKind;

    #[test]
    fn same_slot_modulo_ii_conflicts() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 4);
        let desc = m.desc(OpKind::FAdd).clone();
        let a = OpId::new(0);
        let b = OpId::new(1);
        mrt.place(a, &desc, 0, 2);
        assert!(!mrt.fits(b, &desc, 0, 6), "2 and 6 coincide mod 4");
        assert!(mrt.fits(b, &desc, 0, 3));
        assert_eq!(mrt.conflicts(b, &desc, 0, 6), vec![a]);
        assert!(mrt.conflicts_contain(b, &desc, 0, 6, a));
        assert!(!mrt.conflicts_contain(b, &desc, 0, 3, a));
    }

    #[test]
    fn reset_matches_a_fresh_table() {
        let m = huff_machine();
        let desc = m.desc(OpKind::FAdd).clone();
        let mut recycled = Mrt::new(&m, 3);
        recycled.place(OpId::new(0), &desc, 0, 1);
        // Reset to a different II: same observable behavior as Mrt::new.
        recycled.reset(&m, 5);
        let fresh = Mrt::new(&m, 5);
        assert_eq!(recycled.ii(), fresh.ii());
        for t in 0..10 {
            assert_eq!(
                recycled.fits(OpId::new(1), &desc, 0, t),
                fresh.fits(OpId::new(1), &desc, 0, t),
                "cycle {t}"
            );
        }
        recycled.place(OpId::new(2), &desc, 0, 2);
        assert!(!recycled.fits(OpId::new(3), &desc, 0, 7), "2 ≡ 7 mod 5");
    }

    #[test]
    fn distinct_instances_do_not_conflict() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 2);
        let desc = m.desc(OpKind::Load).clone();
        mrt.place(OpId::new(0), &desc, 0, 0);
        assert!(mrt.fits(OpId::new(1), &desc, 1, 0));
        assert!(!mrt.fits(OpId::new(1), &desc, 0, 0));
    }

    #[test]
    fn unpipelined_pattern_blocks_whole_window() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 40);
        let div = m.desc(OpKind::FDiv).clone();
        let add_like_div = m.desc(OpKind::IntDiv).clone();
        mrt.place(OpId::new(0), &div, 0, 0);
        // Any divider issue in cycles 0..17 collides.
        for t in 0..17 {
            assert!(!mrt.fits(OpId::new(1), &add_like_div, 0, t), "cycle {t}");
        }
        // At cycle 17 the second divide occupies 17..34 — disjoint mod 40.
        assert!(mrt.fits(OpId::new(1), &add_like_div, 0, 17));
        // A second divide can never coexist below II = 34: at II = 20 every
        // issue cycle wraps into the first divide's window.
        let tight = Mrt::new(&m, 20);
        let mut tight2 = tight.clone();
        tight2.place(OpId::new(0), &div, 0, 0);
        assert!((0..20).all(|t| !tight2.fits(OpId::new(1), &add_like_div, 0, t)));
    }

    #[test]
    fn self_collision_of_long_pattern_is_allowed() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 17);
        let sqrt = m.desc(OpKind::FSqrt).clone(); // 21 offsets > II = 17
        let op = OpId::new(0);
        assert!(mrt.fits(op, &sqrt, 0, 0));
        mrt.place(op, &sqrt, 0, 0);
        // All 17 cycles of the divider are busy; occupancy counts cells.
        assert_eq!(mrt.occupancy(), 17);
        mrt.remove(op, &sqrt, 0, 0);
        assert_eq!(mrt.occupancy(), 0);
    }

    #[test]
    fn place_then_remove_round_trips() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 3);
        let desc = m.desc(OpKind::FMul).clone();
        let op = OpId::new(5);
        mrt.place(op, &desc, 0, 7);
        assert_eq!(mrt.occupancy(), 1);
        mrt.remove(op, &desc, 0, 7);
        assert!(mrt.fits(OpId::new(6), &desc, 0, 7));
    }

    #[test]
    #[should_panic(expected = "already held")]
    fn double_place_panics() {
        let m = huff_machine();
        let mut mrt = Mrt::new(&m, 2);
        let desc = m.desc(OpKind::FAdd).clone();
        mrt.place(OpId::new(0), &desc, 0, 0);
        mrt.place(OpId::new(1), &desc, 0, 2);
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_panics() {
        let _ = Mrt::new(&huff_machine(), 0);
    }

    /// The seed implementation: nested `Vec`s, allocation per query. Kept
    /// as the oracle for the randomized differential test below.
    #[derive(Clone)]
    struct NaiveMrt {
        ii: u32,
        slots: Vec<Vec<Vec<Option<OpId>>>>,
    }

    impl NaiveMrt {
        fn new(machine: &Machine, ii: u32) -> Self {
            let slots = machine
                .classes()
                .iter()
                .map(|c| vec![vec![None; ii as usize]; c.count as usize])
                .collect();
            Self { ii, slots }
        }

        fn cell(&self, desc: &OpDesc, instance: u32, time: i64, r: u32) -> (usize, usize, usize) {
            let cycle = (time + i64::from(r)).rem_euclid(i64::from(self.ii)) as usize;
            (desc.class.index(), instance as usize, cycle)
        }

        fn conflicts(&self, this: OpId, desc: &OpDesc, instance: u32, time: i64) -> Vec<OpId> {
            let mut out = Vec::new();
            for &r in &desc.reservation {
                let (c, u, cyc) = self.cell(desc, instance, time, r);
                if let Some(occ) = self.slots[c][u][cyc] {
                    if occ != this && !out.contains(&occ) {
                        out.push(occ);
                    }
                }
            }
            out
        }

        fn fits(&self, this: OpId, desc: &OpDesc, instance: u32, time: i64) -> bool {
            self.conflicts(this, desc, instance, time).is_empty()
        }

        fn place(&mut self, this: OpId, desc: &OpDesc, instance: u32, time: i64) {
            for &r in &desc.reservation {
                let (c, u, cyc) = self.cell(desc, instance, time, r);
                self.slots[c][u][cyc] = Some(this);
            }
        }

        fn remove(&mut self, _this: OpId, desc: &OpDesc, instance: u32, time: i64) {
            for &r in &desc.reservation {
                let (c, u, cyc) = self.cell(desc, instance, time, r);
                self.slots[c][u][cyc] = None;
            }
        }

        fn occupancy(&self) -> usize {
            self.slots
                .iter()
                .flatten()
                .flatten()
                .filter(|s| s.is_some())
                .count()
        }
    }

    #[test]
    fn bitset_mrt_matches_naive_oracle_on_random_sequences() {
        use lsms_prng::SmallRng;
        let m = huff_machine();
        let kinds = [
            OpKind::FAdd,
            OpKind::FMul,
            OpKind::FDiv,
            OpKind::Load,
            OpKind::Store,
            OpKind::IntAdd,
            OpKind::FSqrt,
        ];
        for case in 0u64..64 {
            let mut rng = SmallRng::seed_from_u64(0x317 + case);
            let ii = rng.gen_range(1..24u32);
            let mut fast = Mrt::new(&m, ii);
            let mut naive = NaiveMrt::new(&m, ii);
            // (op, desc index, instance, time) of everything currently placed.
            let mut placed: Vec<(OpId, usize, u32, i64)> = Vec::new();
            let mut next_op = 0usize;
            for _ in 0..200 {
                let ki = rng.gen_range(0..kinds.len());
                let desc = m.desc(kinds[ki]).clone();
                let count = m.classes()[desc.class.index()].count;
                let instance = rng.gen_range(0..count);
                let time = rng.gen_range(0..64i64);
                let this = OpId::new(next_op);
                assert_eq!(
                    fast.fits(this, &desc, instance, time),
                    naive.fits(this, &desc, instance, time),
                    "case {case} ii {ii}: fits diverges"
                );
                assert_eq!(
                    fast.conflicts(this, &desc, instance, time),
                    naive.conflicts(this, &desc, instance, time),
                    "case {case} ii {ii}: conflicts diverge"
                );
                if fast.fits(this, &desc, instance, time) && rng.gen_bool(0.7) {
                    fast.place(this, &desc, instance, time);
                    naive.place(this, &desc, instance, time);
                    placed.push((this, ki, instance, time));
                    next_op += 1;
                } else if !placed.is_empty() && rng.gen_bool(0.5) {
                    let victim = rng.gen_range(0..placed.len());
                    let (op, ki, instance, time) = placed.swap_remove(victim);
                    let desc = m.desc(kinds[ki]).clone();
                    fast.remove(op, &desc, instance, time);
                    naive.remove(op, &desc, instance, time);
                }
                assert_eq!(fast.occupancy(), naive.occupancy(), "case {case} ii {ii}");
            }
        }
    }
}
