//! Machine descriptions and the paper's Table 1 target.

use std::collections::BTreeMap;

use lsms_ir::OpKind;

use crate::{ClassId, OpDesc, ResourceClass};

/// A VLIW target: functional-unit classes plus an opcode → unit/latency/
/// reservation mapping.
///
/// Build one with [`MachineBuilder`] or use the predefined machines
/// ([`huff_machine`], [`short_latency_machine`], [`wide_machine`]).
#[derive(Clone, Debug)]
pub struct Machine {
    name: String,
    classes: Vec<ResourceClass>,
    table: BTreeMap<OpKind, OpDesc>,
}

impl Machine {
    /// The machine's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional-unit classes, indexable by [`ClassId::index`].
    pub fn classes(&self) -> &[ResourceClass] {
        &self.classes
    }

    /// How `kind` uses the machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not implement `kind`; predefined machines
    /// implement every [`OpKind`].
    pub fn desc(&self, kind: OpKind) -> &OpDesc {
        self.table
            .get(&kind)
            .unwrap_or_else(|| panic!("machine {} does not implement {kind}", self.name))
    }

    /// Result latency of `kind` (§2.1: the compiler honours latencies,
    /// scheduling no-ops wherever necessary).
    pub fn latency(&self, kind: OpKind) -> u32 {
        self.desc(kind).latency
    }

    /// Iterates over the opcode table in a stable order.
    pub fn op_table(&self) -> impl Iterator<Item = (OpKind, &OpDesc)> + '_ {
        self.table.iter().map(|(&k, d)| (k, d))
    }
}

/// Incremental construction of a [`Machine`].
///
/// # Example
///
/// ```
/// use lsms_machine::MachineBuilder;
/// use lsms_ir::OpKind;
///
/// let mut b = MachineBuilder::new("tiny");
/// let alu = b.class("ALU", 1);
/// b.pipelined(alu, 1, &[OpKind::IntAdd, OpKind::IntSub]);
/// b.unpipelined(alu, 8, &[OpKind::IntDiv]);
/// let m = b.finish();
/// assert_eq!(m.latency(OpKind::IntDiv), 8);
/// ```
#[derive(Clone, Debug)]
pub struct MachineBuilder {
    name: String,
    classes: Vec<ResourceClass>,
    table: BTreeMap<OpKind, OpDesc>,
}

impl MachineBuilder {
    /// Starts an empty machine description.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            classes: Vec::new(),
            table: BTreeMap::new(),
        }
    }

    /// Adds a class of `count` identical units and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn class(&mut self, name: impl Into<String>, count: u32) -> ClassId {
        assert!(count > 0, "a unit class must contain at least one unit");
        let id = ClassId(u16::try_from(self.classes.len()).expect("too many unit classes"));
        self.classes.push(ResourceClass {
            name: name.into(),
            count,
        });
        id
    }

    /// Maps each of `kinds` to a fully pipelined operation on `class`.
    pub fn pipelined(&mut self, class: ClassId, latency: u32, kinds: &[OpKind]) -> &mut Self {
        for &k in kinds {
            self.table.insert(k, OpDesc::pipelined(class, latency));
        }
        self
    }

    /// Maps each of `kinds` to a non-pipelined operation on `class`
    /// (busy for its whole latency, like the paper's divider).
    pub fn unpipelined(&mut self, class: ClassId, latency: u32, kinds: &[OpKind]) -> &mut Self {
        for &k in kinds {
            self.table.insert(k, OpDesc::unpipelined(class, latency));
        }
        self
    }

    /// Maps `kind` to a custom reservation pattern.
    pub fn custom(&mut self, kind: OpKind, desc: OpDesc) -> &mut Self {
        self.table.insert(kind, desc);
        self
    }

    /// Finalises the description.
    pub fn finish(self) -> Machine {
        Machine {
            name: self.name,
            classes: self.classes,
            table: self.table,
        }
    }
}

/// All adder-class opcodes (integer add/sub/logical, float add/sub,
/// comparisons, predicate logic, select, copy).
fn adder_kinds() -> Vec<OpKind> {
    vec![
        OpKind::IntAdd,
        OpKind::IntSub,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::FAdd,
        OpKind::FSub,
        OpKind::CmpEq,
        OpKind::CmpNe,
        OpKind::CmpLt,
        OpKind::CmpLe,
        OpKind::CmpGt,
        OpKind::CmpGe,
        OpKind::PredAnd,
        OpKind::PredOr,
        OpKind::PredNot,
        OpKind::Select,
        OpKind::Copy,
    ]
}

const ADDR_KINDS: [OpKind; 3] = [OpKind::AddrAdd, OpKind::AddrSub, OpKind::AddrMul];
const MUL_KINDS: [OpKind; 2] = [OpKind::IntMul, OpKind::FMul];
const DIV_KINDS: [OpKind; 4] = [OpKind::IntDiv, OpKind::IntMod, OpKind::FDiv, OpKind::FMod];

/// The paper's target machine, reproducing Table 1 exactly:
///
/// | Pipeline      | Units | Operations            | Latency |
/// |---------------|-------|-----------------------|---------|
/// | Memory Port   | 2     | load / store          | 13 / 1  |
/// | Address ALU   | 2     | addr add/sub/mult     | 1       |
/// | Adder         | 1     | int & float add/sub/… | 1       |
/// | Multiplier    | 1     | int/float multiply    | 2       |
/// | Divider       | 1     | div/mod 17, sqrt 21   | not pipelined |
/// | Branch Unit   | 1     | brtop                 | 2       |
///
/// The 13-cycle load latency models bypassing a first-level cache and
/// hitting a large off-chip second-level cache (§2.1).
pub fn huff_machine() -> Machine {
    let mut b = MachineBuilder::new("huff-cydra");
    let mem = b.class("Memory Port", 2);
    let addr = b.class("Address ALU", 2);
    let add = b.class("Adder", 1);
    let mul = b.class("Multiplier", 1);
    let div = b.class("Divider", 1);
    let br = b.class("Branch Unit", 1);
    b.pipelined(mem, 13, &[OpKind::Load]);
    b.pipelined(mem, 1, &[OpKind::Store]);
    b.pipelined(addr, 1, &ADDR_KINDS);
    b.pipelined(add, 1, &adder_kinds());
    b.pipelined(mul, 2, &MUL_KINDS);
    b.unpipelined(div, 17, &DIV_KINDS);
    b.unpipelined(div, 21, &[OpKind::FSqrt]);
    b.pipelined(br, 2, &[OpKind::Brtop]);
    b.finish()
}

/// A robustness-experiment variant with first-level-cache load latency and
/// faster divides (§7: "other experiments with different latencies for the
/// functional units give very similar performance results").
pub fn short_latency_machine() -> Machine {
    let mut b = MachineBuilder::new("short-latency");
    let mem = b.class("Memory Port", 2);
    let addr = b.class("Address ALU", 2);
    let add = b.class("Adder", 1);
    let mul = b.class("Multiplier", 1);
    let div = b.class("Divider", 1);
    let br = b.class("Branch Unit", 1);
    b.pipelined(mem, 3, &[OpKind::Load]);
    b.pipelined(mem, 1, &[OpKind::Store]);
    b.pipelined(addr, 1, &ADDR_KINDS);
    b.pipelined(add, 1, &adder_kinds());
    b.pipelined(mul, 2, &MUL_KINDS);
    b.unpipelined(div, 8, &DIV_KINDS);
    b.unpipelined(div, 10, &[OpKind::FSqrt]);
    b.pipelined(br, 1, &[OpKind::Brtop]);
    b.finish()
}

/// A wider robustness-experiment variant: two adders and two multipliers,
/// with longer floating-point latencies.
pub fn wide_machine() -> Machine {
    let mut b = MachineBuilder::new("wide");
    let mem = b.class("Memory Port", 2);
    let addr = b.class("Address ALU", 2);
    let add = b.class("Adder", 2);
    let mul = b.class("Multiplier", 2);
    let div = b.class("Divider", 1);
    let br = b.class("Branch Unit", 1);
    b.pipelined(mem, 13, &[OpKind::Load]);
    b.pipelined(mem, 1, &[OpKind::Store]);
    b.pipelined(addr, 1, &ADDR_KINDS);
    b.pipelined(add, 3, &adder_kinds());
    b.pipelined(mul, 4, &MUL_KINDS);
    b.unpipelined(div, 17, &DIV_KINDS);
    b.unpipelined(div, 21, &[OpKind::FSqrt]);
    b.pipelined(br, 2, &[OpKind::Brtop]);
    b.finish()
}

/// The machines exercised by the robustness experiment, paper machine
/// first.
pub fn alternate_machines() -> Vec<Machine> {
    vec![huff_machine(), short_latency_machine(), wide_machine()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huff_machine_matches_table_1() {
        let m = huff_machine();
        assert_eq!(m.latency(OpKind::Load), 13);
        assert_eq!(m.latency(OpKind::Store), 1);
        assert_eq!(m.latency(OpKind::AddrAdd), 1);
        assert_eq!(m.latency(OpKind::IntAdd), 1);
        assert_eq!(m.latency(OpKind::FAdd), 1);
        assert_eq!(m.latency(OpKind::FMul), 2);
        assert_eq!(m.latency(OpKind::IntDiv), 17);
        assert_eq!(m.latency(OpKind::FSqrt), 21);
        assert_eq!(m.latency(OpKind::Brtop), 2);
        assert_eq!(m.classes()[m.desc(OpKind::Load).class.index()].count, 2);
        assert_eq!(m.classes()[m.desc(OpKind::FAdd).class.index()].count, 1);
    }

    #[test]
    fn divider_is_not_pipelined() {
        let m = huff_machine();
        assert_eq!(m.desc(OpKind::FDiv).reservation.len(), 17);
        assert_eq!(m.desc(OpKind::FSqrt).reservation.len(), 21);
        assert_eq!(m.desc(OpKind::FMul).reservation, vec![0]);
    }

    #[test]
    fn every_op_kind_is_implemented() {
        use OpKind::*;
        let kinds = [
            AddrAdd, AddrSub, AddrMul, IntAdd, IntSub, And, Or, Xor, FAdd, FSub, CmpEq, CmpNe,
            CmpLt, CmpLe, CmpGt, CmpGe, PredAnd, PredOr, PredNot, Select, Copy, IntMul, FMul,
            IntDiv, IntMod, FDiv, FMod, FSqrt, Load, Store, Brtop,
        ];
        for m in alternate_machines() {
            for &k in &kinds {
                let _ = m.desc(k); // panics if missing
            }
        }
    }

    #[test]
    fn loads_and_stores_share_the_memory_ports() {
        let m = huff_machine();
        assert_eq!(m.desc(OpKind::Load).class, m.desc(OpKind::Store).class);
    }

    #[test]
    #[should_panic(expected = "does not implement")]
    fn missing_opcode_panics() {
        let b = MachineBuilder::new("empty");
        b.finish().latency(OpKind::FAdd);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_unit_class_panics() {
        MachineBuilder::new("bad").class("ALU", 0);
    }
}
