//! Target-machine model for lifetime-sensitive modulo scheduling.
//!
//! The hypothetical target (§2 of the paper) is a VLIW processor similar to
//! Cydrome's Cydra 5: six functional-unit classes with the latencies of
//! Table 1, all fully pipelined except the divider, predicated execution,
//! and rotating register files. This crate models:
//!
//! * [`Machine`] — functional-unit classes, per-opcode latencies and
//!   reservation patterns, with [`huff_machine`] reproducing Table 1 and a
//!   few alternates for the paper's §7 robustness experiment;
//! * pre-scheduling functional-unit assignment ([`assign_units`]) — the
//!   compiler binds each operation to a specific unit instance before
//!   scheduling, restricting it to one issue slot per cycle (§4.3);
//! * the modulo resource table ([`Mrt`]) — the `II`-entry table enforcing
//!   the modulo constraint: no resource may be used more than once at the
//!   same time modulo `II`;
//! * the resource-contention lower bound [`res_mii`] (§3.1);
//! * dependence-arc latency resolution ([`dep_latency`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assign;
mod machine;
mod mrt;
mod resource;

pub use assign::{assign_units, UnitAssignment};
pub use machine::{
    alternate_machines, huff_machine, short_latency_machine, wide_machine, Machine, MachineBuilder,
};
pub use mrt::Mrt;
pub use resource::{critical_classes, dep_latency, res_mii, ClassId, OpDesc, ResourceClass};
