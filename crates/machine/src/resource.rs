//! Functional-unit classes, reservation patterns, and resource bounds.

use std::fmt;

use lsms_ir::{Dep, DepKind, LoopBody};

use crate::Machine;

/// Index of a functional-unit class within a [`Machine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub(crate) u16);

impl ClassId {
    /// Raw index into [`Machine::classes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// A class of identical functional units (a row of Table 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceClass {
    /// Display name, e.g. `"Memory Port"`.
    pub name: String,
    /// Number of identical units in the class.
    pub count: u32,
}

/// How an opcode uses the machine: which unit class, its result latency,
/// and the cycles (relative to issue) during which it occupies the unit.
///
/// Fully pipelined operations reserve their unit only at the issue cycle
/// (`reservation == [0]`); the non-pipelined divider reserves its unit for
/// its whole latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpDesc {
    /// The functional-unit class that executes the opcode.
    pub class: ClassId,
    /// Cycles from issue until the result may be consumed.
    pub latency: u32,
    /// Offsets from the issue cycle at which the unit is busy.
    pub reservation: Vec<u32>,
}

impl OpDesc {
    /// A fully pipelined operation: busy only at issue.
    pub fn pipelined(class: ClassId, latency: u32) -> Self {
        Self {
            class,
            latency,
            reservation: vec![0],
        }
    }

    /// A non-pipelined operation: busy for `latency` consecutive cycles.
    pub fn unpipelined(class: ClassId, latency: u32) -> Self {
        Self {
            class,
            latency,
            reservation: (0..latency).collect(),
        }
    }
}

/// The latency a dependence arc imposes: the sink may issue no earlier than
/// `source issue + dep_latency` (shifted by `ω · II`).
///
/// * **Flow** arcs carry the producing operation's result latency.
/// * **Anti** arcs have latency 0 — registers and memory are read at issue,
///   so the overwriting operation may issue in the same cycle.
/// * **Output** arcs have latency 1, keeping same-location writes ordered.
///
/// Control arcs (scheduling-only) behave like anti arcs.
pub fn dep_latency(machine: &Machine, body: &LoopBody, dep: &Dep) -> i64 {
    match dep.kind {
        DepKind::Flow => i64::from(machine.desc(body.op(dep.from).kind).latency),
        DepKind::Anti => 0,
        DepKind::Output => 1,
    }
}

/// The resource-contention lower bound on II (§3.1).
///
/// For each unit class, one iteration requires `N` busy-cycles (summing
/// every assigned operation's reservation-pattern length) while the machine
/// supplies `R` units per cycle, so `II ≥ ⌈N / R⌉`; `res_mii` is the maximum
/// over classes, and at least 1.
pub fn res_mii(machine: &Machine, body: &LoopBody) -> u32 {
    let mut busy = vec![0u64; machine.classes().len()];
    for op in body.ops() {
        let desc = machine.desc(op.kind);
        busy[desc.class.index()] += desc.reservation.len() as u64;
    }
    machine
        .classes()
        .iter()
        .zip(&busy)
        .map(|(class, &n)| n.div_ceil(u64::from(class.count)) as u32)
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Marks the *critical* unit classes at a candidate II (§4.3): a class is
/// critical when one iteration keeps each of its units busy for at least
/// `0.90 · II` cycles. Operations assigned to critical classes have their
/// slack halved by the dynamic-priority scheme.
pub fn critical_classes(machine: &Machine, body: &LoopBody, ii: u32) -> Vec<bool> {
    let mut busy = vec![0u64; machine.classes().len()];
    for op in body.ops() {
        let desc = machine.desc(op.kind);
        busy[desc.class.index()] += desc.reservation.len() as u64;
    }
    machine
        .classes()
        .iter()
        .zip(&busy)
        // busy / count >= 0.90 * II  <=>  10 * busy >= 9 * II * count
        .map(|(class, &n)| 10 * n >= 9 * u64::from(ii) * u64::from(class.count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huff_machine;
    use lsms_ir::{DepVia, LoopBuilder, OpId, OpKind, ValueType};

    fn body_with(kinds: &[OpKind]) -> LoopBody {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let f = b.invariant(ValueType::Float, "f");
        for &k in kinds {
            match k {
                OpKind::Load => {
                    let r = b.new_value(ValueType::Float);
                    b.op(k, &[a], Some(r));
                }
                OpKind::Store => {
                    b.op(k, &[a, f], None);
                }
                OpKind::FSqrt => {
                    let r = b.new_value(ValueType::Float);
                    b.op(k, &[f], Some(r));
                }
                _ => {
                    let r = b.new_value(ValueType::Float);
                    b.op(k, &[f, f], Some(r));
                }
            }
        }
        b.finish()
    }

    #[test]
    fn res_mii_of_empty_body_is_one() {
        let m = huff_machine();
        assert_eq!(res_mii(&m, &body_with(&[])), 1);
    }

    #[test]
    fn res_mii_counts_memory_ports() {
        let m = huff_machine();
        // Five memory operations over two ports: ceil(5/2) = 3.
        let body = body_with(&[
            OpKind::Load,
            OpKind::Load,
            OpKind::Load,
            OpKind::Store,
            OpKind::Store,
        ]);
        assert_eq!(res_mii(&m, &body), 3);
    }

    #[test]
    fn res_mii_reflects_unpipelined_divider() {
        let m = huff_machine();
        // One divide occupies the divider for 17 cycles.
        let body = body_with(&[OpKind::FDiv]);
        assert_eq!(res_mii(&m, &body), 17);
        let body = body_with(&[OpKind::FSqrt, OpKind::FDiv]);
        assert_eq!(res_mii(&m, &body), 38);
    }

    #[test]
    fn dep_latency_follows_kind() {
        let m = huff_machine();
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let st = b.op(OpKind::Store, &[a, x], None);
        let flow = b.flow_dep(ld, st, 0);
        let anti = b.dep(st, ld, DepKind::Anti, DepVia::Memory, 1);
        let out = b.dep(st, st, DepKind::Output, DepVia::Memory, 1);
        let body = b.finish();
        assert_eq!(dep_latency(&m, &body, body.dep(flow)), 13);
        assert_eq!(dep_latency(&m, &body, body.dep(anti)), 0);
        assert_eq!(dep_latency(&m, &body, body.dep(out)), 1);
        let _ = OpId::new(0);
    }

    #[test]
    fn critical_marking_uses_ninety_percent_rule() {
        let m = huff_machine();
        // 9 adds on the single adder: critical at II = 10 (9 >= 0.9*10),
        // not at II = 11.
        let body = body_with(&[OpKind::FAdd; 9]);
        let adder = m.desc(OpKind::FAdd).class;
        assert!(critical_classes(&m, &body, 10)[adder.index()]);
        assert!(!critical_classes(&m, &body, 11)[adder.index()]);
    }

    #[test]
    fn op_desc_constructors() {
        let c = ClassId(0);
        assert_eq!(OpDesc::pipelined(c, 13).reservation, vec![0]);
        assert_eq!(OpDesc::unpipelined(c, 3).reservation, vec![0, 1, 2]);
    }
}
