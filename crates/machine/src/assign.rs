//! Pre-scheduling functional-unit assignment.

use lsms_ir::LoopBody;

use crate::{ClassId, Machine};

/// The unit instance an operation was bound to before scheduling.
///
/// The paper's compiler "assigns operations to functional units before
/// scheduling commences, thereby restricting an operation to one issue slot
/// per cycle" (§4.3). Slack is therefore an upper bound on *issue cycles*,
/// not issue slots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitAssignment {
    /// The functional-unit class executing the operation.
    pub class: ClassId,
    /// Which unit within the class (0-based, `< class.count`).
    pub instance: u32,
}

/// Binds every operation to a unit instance, round-robin within each
/// class in ASAP order — operations that become ready at the same time
/// land on different instances of the class, which keeps tight recurrence
/// circuits schedulable at MII far more often than program-order
/// round-robin does.
///
/// ASAP here is the longest intra-iteration dependence path (ω = 0 arcs
/// only), which needs no candidate II.
///
/// Returns one assignment per operation, indexable by `OpId::index`.
pub fn assign_units(machine: &Machine, body: &LoopBody) -> Vec<UnitAssignment> {
    let n = body.num_ops();
    // Longest path over the acyclic omega-0 subgraph, iteratively (the
    // subgraph is a DAG for any schedulable loop; a cycle would make the
    // loop unschedulable and is caught later, so cap the sweeps).
    let mut asap = vec![0i64; n];
    for _ in 0..n.max(1) {
        let mut changed = false;
        for dep in body.deps() {
            if dep.omega != 0 {
                continue;
            }
            let lat = i64::from(machine.latency(body.op(dep.from).kind));
            let t = asap[dep.from.index()] + lat;
            if t > asap[dep.to.index()] {
                asap[dep.to.index()] = t;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (asap[i], i));
    let mut next = vec![0u32; machine.classes().len()];
    let mut assignments = vec![
        UnitAssignment {
            class: ClassId::default(),
            instance: 0
        };
        n
    ];
    for i in order {
        let class = machine.desc(body.ops()[i].kind).class;
        let count = machine.classes()[class.index()].count;
        let instance = next[class.index()] % count;
        next[class.index()] += 1;
        assignments[i] = UnitAssignment { class, instance };
    }
    assignments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huff_machine;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};

    #[test]
    fn round_robin_across_memory_ports() {
        let m = huff_machine();
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        for _ in 0..4 {
            let r = b.new_value(ValueType::Float);
            b.op(OpKind::Load, &[a], Some(r));
        }
        let body = b.finish();
        let asg = assign_units(&m, &body);
        assert_eq!(
            asg.iter().map(|a| a.instance).collect::<Vec<_>>(),
            vec![0, 1, 0, 1]
        );
        assert!(asg.iter().all(|a| a.class == m.desc(OpKind::Load).class));
    }

    #[test]
    fn single_unit_classes_always_get_instance_zero() {
        let m = huff_machine();
        let mut b = LoopBuilder::new("t");
        let f = b.invariant(ValueType::Float, "f");
        for _ in 0..3 {
            let r = b.new_value(ValueType::Float);
            b.op(OpKind::FAdd, &[f, f], Some(r));
        }
        let body = b.finish();
        let asg = assign_units(&m, &body);
        assert!(asg.iter().all(|a| a.instance == 0));
    }

    #[test]
    fn classes_count_independently() {
        let m = huff_machine();
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let f = b.invariant(ValueType::Float, "f");
        let r1 = b.new_value(ValueType::Float);
        b.op(OpKind::Load, &[a], Some(r1)); // mem instance 0
        let r2 = b.new_value(ValueType::Addr);
        b.op(OpKind::AddrAdd, &[a, a], Some(r2)); // addr instance 0
        let r3 = b.new_value(ValueType::Float);
        b.op(OpKind::Load, &[a], Some(r3)); // mem instance 1
        let _ = f;
        let body = b.finish();
        let asg = assign_units(&m, &body);
        assert_eq!(asg[0].instance, 0);
        assert_eq!(asg[1].instance, 0);
        assert_eq!(asg[2].instance, 1);
    }
}
