//! Quickstart: compile a loop, pipeline it, and look at the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lsms::codegen::{emit, to_asm};
use lsms::front::compile;
use lsms::ir::RegClass;
use lsms::machine::huff_machine;
use lsms::regalloc::{allocate_rotating, Strategy};
use lsms::sched::pressure::measure;
use lsms::sched::{SchedProblem, SlackScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A DAXPY loop in the DSL.
    let unit = compile(
        "loop daxpy(i = 1..n) {
             real x[], y[];
             param real a;
             y[i] = y[i] + a * x[i];
         }",
    )?;
    let compiled = &unit.loops[0];

    // 2. Bind it to the paper's machine and look at the lower bounds.
    let machine = huff_machine();
    let problem = SchedProblem::new(&compiled.body, &machine)?;
    println!(
        "daxpy: {} ops, ResMII = {}, RecMII = {}, MII = {}",
        problem.num_real_ops(),
        problem.res_mii(),
        problem.rec_mii(),
        problem.mii()
    );

    // 3. Software-pipeline it with the bidirectional slack scheduler.
    let schedule = SlackScheduler::new().run(&problem)?;
    println!(
        "scheduled at II = {} ({} stages, length {})",
        schedule.ii,
        schedule.stages(),
        schedule.length()
    );
    for op in compiled.body.ops() {
        println!(
            "  cycle {:>3}  (kernel slot {}, stage {})  {}",
            schedule.times[op.id.index()],
            schedule.kernel_cycle(op.id.index()),
            schedule.stage(op.id.index()),
            op.kind,
        );
    }

    // 4. Measure register pressure against the schedule-independent bound.
    let pressure = measure(&problem, &schedule);
    println!(
        "RR pressure: MaxLive = {} (MinAvg lower bound = {}), GPRs = {}",
        pressure.rr_max_live, pressure.rr_min_avg, pressure.gprs
    );

    // 5. Allocate rotating registers and print the kernel.
    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default())?;
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default())?;
    println!(
        "rotating allocation: {} registers (MaxLive + {})",
        rr.num_regs,
        rr.excess()
    );
    let kernel = emit(&problem, &schedule, &rr, &icr)?;
    println!("\n{}", to_asm(&kernel, &problem));
    Ok(())
}
