//! Describing your own VLIW target and seeing how the pipeline changes:
//! the §7 robustness story ("other experiments with different latencies
//! ... give very similar performance results") on one kernel.
//!
//! ```sh
//! cargo run --example custom_machine
//! ```

use lsms::front::compile;
use lsms::ir::OpKind;
use lsms::machine::{alternate_machines, Machine, MachineBuilder};
use lsms::sched::pressure::measure;
use lsms::sched::{SchedProblem, SlackScheduler};

/// A narrow embedded-style core: one memory port, one ALU doing both
/// address and scalar work... except the IR distinguishes address from
/// scalar operations, so give each class one unit and stretch latencies.
fn embedded_machine() -> Machine {
    let mut b = MachineBuilder::new("embedded");
    let mem = b.class("Memory Port", 1);
    let addr = b.class("Address ALU", 1);
    let alu = b.class("ALU", 1);
    let mul = b.class("Multiplier", 1);
    let div = b.class("Divider", 1);
    let br = b.class("Branch", 1);
    b.pipelined(mem, 4, &[OpKind::Load]);
    b.pipelined(mem, 1, &[OpKind::Store]);
    b.pipelined(
        addr,
        1,
        &[OpKind::AddrAdd, OpKind::AddrSub, OpKind::AddrMul],
    );
    b.pipelined(
        alu,
        1,
        &[
            OpKind::IntAdd,
            OpKind::IntSub,
            OpKind::And,
            OpKind::Or,
            OpKind::Xor,
            OpKind::FAdd,
            OpKind::FSub,
            OpKind::CmpEq,
            OpKind::CmpNe,
            OpKind::CmpLt,
            OpKind::CmpLe,
            OpKind::CmpGt,
            OpKind::CmpGe,
            OpKind::PredAnd,
            OpKind::PredOr,
            OpKind::PredNot,
            OpKind::Select,
            OpKind::Copy,
        ],
    );
    b.pipelined(mul, 3, &[OpKind::IntMul, OpKind::FMul]);
    b.unpipelined(
        div,
        12,
        &[OpKind::IntDiv, OpKind::IntMod, OpKind::FDiv, OpKind::FMod],
    );
    b.unpipelined(div, 15, &[OpKind::FSqrt]);
    b.pipelined(br, 1, &[OpKind::Brtop]);
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unit = compile(
        "loop ll7_state(i = 1..n) {
             real x[], y[], z[], u[];
             param real r, t;
             x[i] = u[i] + r * (z[i] + r * y[i])
                  + t * (u[i+3] + r * (u[i+2] + r * u[i+1])
                  + t * (u[i+6] + r * (u[i+5] + r * u[i+4])));
         }",
    )?;
    let compiled = &unit.loops[0];

    let mut machines = alternate_machines();
    machines.push(embedded_machine());
    println!(
        "{:<16} {:>7} {:>7} {:>4} {:>7} {:>8} {:>7}",
        "machine", "ResMII", "RecMII", "II", "stages", "MaxLive", "MinAvg"
    );
    for machine in &machines {
        let problem = SchedProblem::new(&compiled.body, machine)?;
        let schedule = SlackScheduler::new().run(&problem)?;
        let pressure = measure(&problem, &schedule);
        println!(
            "{:<16} {:>7} {:>7} {:>4} {:>7} {:>8} {:>7}",
            machine.name(),
            problem.res_mii(),
            problem.rec_mii(),
            schedule.ii,
            schedule.stages(),
            pressure.rr_max_live,
            pressure.rr_min_avg,
        );
    }
    println!(
        "\nThe scheduler meets the lower bound on every machine; pressure tracks MinAvg \
         wherever latency lets it."
    );
    Ok(())
}
