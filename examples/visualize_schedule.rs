//! Renders SVG schedule charts for the paper's sample loop under the
//! bidirectional heuristic and the always-early ablation, side by side —
//! the visual version of Figure 3's lifetime story.
//!
//! ```sh
//! cargo run --example visualize_schedule
//! # writes sample_bidirectional.svg and sample_always_early.svg
//! ```

use lsms::front::compile;
use lsms::machine::huff_machine;
use lsms::sched::pressure::measure;
use lsms::sched::svg::to_svg;
use lsms::sched::{DirectionPolicy, SchedProblem, SlackConfig, SlackScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unit = compile(
        "loop sample(i = 3..n) {
             real x[], y[], z[];
             param real a;
             z[i] = a * x[i] + y[i];     // loads with slack
             x[i] = x[i-1] + y[i-2];     // the paper's recurrences
             y[i] = y[i-1] + x[i-2];
         }",
    )?;
    let compiled = &unit.loops[0];
    let machine = huff_machine();
    let problem = SchedProblem::new(&compiled.body, &machine)?;

    for (name, direction) in [
        ("sample_bidirectional", DirectionPolicy::Bidirectional),
        ("sample_always_early", DirectionPolicy::AlwaysEarly),
    ] {
        let schedule = SlackScheduler::with_config(SlackConfig {
            direction,
            ..SlackConfig::default()
        })
        .run(&problem)?;
        let pressure = measure(&problem, &schedule);
        let path = format!("{name}.svg");
        std::fs::write(&path, to_svg(&problem, &schedule))?;
        println!(
            "{path}: II {} MaxLive {} (MinAvg {})",
            schedule.ii, pressure.rr_max_live, pressure.rr_min_avg
        );
    }
    println!("open the two SVGs side by side: the bidirectional schedule issues the loads late,");
    println!("so their lifetime bars shrink while the II stays identical.");
    Ok(())
}
