//! Register-pressure comparison across schedulers on the kernel suite:
//! the paper's central claim in miniature. For every hand-written kernel,
//! schedule with the bidirectional slack scheduler, the always-early
//! ablation, and the Cydrome-style baseline, then compare II and MaxLive.
//!
//! ```sh
//! cargo run --example register_pressure_report
//! ```

use lsms::front::compile;
use lsms::machine::huff_machine;
use lsms::sched::pressure::measure;
use lsms::sched::{CydromeScheduler, DirectionPolicy, SchedProblem, SlackConfig, SlackScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = huff_machine();
    println!(
        "{:<20} {:>4} | {:>4} {:>8} | {:>4} {:>8} | {:>4} {:>8}",
        "kernel", "MII", "II", "MaxLive", "II", "MaxLive", "II", "MaxLive"
    );
    println!(
        "{:<20} {:>4} | {:^13} | {:^13} | {:^13}",
        "", "", "bidirectional", "always-early", "cydrome"
    );
    let mut totals = [0u64; 4]; // mii, bidir, early, old MaxLive sums
    for kernel in lsms::loops::kernels() {
        let unit = compile(&kernel.source)?;
        let compiled = &unit.loops[0];
        let problem = SchedProblem::new(&compiled.body, &machine)?;

        let bidir = SlackScheduler::new().run(&problem)?;
        let early = SlackScheduler::with_config(SlackConfig {
            direction: DirectionPolicy::AlwaysEarly,
            ..SlackConfig::default()
        })
        .run(&problem)?;
        let old = CydromeScheduler::new().run(&problem)?;

        let pb = measure(&problem, &bidir);
        let pe = measure(&problem, &early);
        let po = measure(&problem, &old);
        println!(
            "{:<20} {:>4} | {:>4} {:>8} | {:>4} {:>8} | {:>4} {:>8}",
            kernel.name,
            problem.mii(),
            bidir.ii,
            pb.rr_max_live,
            early.ii,
            pe.rr_max_live,
            old.ii,
            po.rr_max_live,
        );
        totals[0] += u64::from(problem.mii());
        totals[1] += u64::from(pb.rr_max_live);
        totals[2] += u64::from(pe.rr_max_live);
        totals[3] += u64::from(po.rr_max_live);
    }
    println!(
        "\ntotal MaxLive: bidirectional {}, always-early {}, cydrome {} \
         (lifetime sensitivity saves {:.1}% of rotating registers)",
        totals[1],
        totals[2],
        totals[3],
        100.0 * (totals[3] as f64 - totals[1] as f64) / totals[3] as f64
    );
    Ok(())
}
