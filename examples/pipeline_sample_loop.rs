//! The paper's running example (Figure 1) end to end: the two-recurrence
//! loop whose values stay live for more than II cycles — the motivating
//! case for rotating register files (Figures 2–4).
//!
//! ```sh
//! cargo run --example pipeline_sample_loop
//! ```

use lsms::codegen::{emit, to_asm};
use lsms::front::compile;
use lsms::ir::RegClass;
use lsms::machine::huff_machine;
use lsms::regalloc::{allocate_rotating, Strategy};
use lsms::sched::pressure::{lifetimes, live_vector, measure};
use lsms::sched::{SchedProblem, SlackScheduler};
use lsms::sim::{check_equivalence, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unit = compile(
        "loop sample(i = 3..n) {
             real x[], y[];
             x[i] = x[i-1] + y[i-2];
             y[i] = y[i-1] + x[i-2];
         }",
    )?;
    let compiled = &unit.loops[0];

    println!("== dependence graph after load/store elimination ==");
    println!("{}", lsms::ir::to_dot(&compiled.body));

    let machine = huff_machine();
    let problem = SchedProblem::new(&compiled.body, &machine)?;
    println!(
        "ResMII = {}, RecMII = {}, MII = {} (the paper schedules this loop at II = 2)",
        problem.res_mii(),
        problem.rec_mii(),
        problem.mii()
    );
    let schedule = SlackScheduler::new().run(&problem)?;
    assert_eq!(schedule.ii, 2, "the sample loop achieves the paper's II");

    // Reproduce the Figure 4 lifetime wrap: lifetimes from one iteration
    // folded around a vector of length II.
    let lt = lifetimes(&problem, &schedule);
    println!("\n== lifetimes (issue to last-use issue, Figure 3 convention) ==");
    for v in compiled.body.values() {
        if let Some(len) = lt[v.id.index()] {
            let def = v.def.expect("lifetimes belong to defined values");
            println!(
                "  {:<8} defined at cycle {:>2}, live {:>2} cycles",
                v.name,
                schedule.times[def.index()],
                len
            );
        }
    }
    let vector = live_vector(&problem, &schedule, &lt, RegClass::Rr);
    println!("LiveVector = {vector:?} (the paper's Figure 4 computes <4 4>)");
    let pressure = measure(&problem, &schedule);
    println!(
        "MaxLive = {}, MinAvg = {}",
        pressure.rr_max_live, pressure.rr_min_avg
    );

    // Allocate the rotating file (Figure 3 shows a naive 6-register
    // allocation; an optimal one uses 4).
    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default())?;
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default())?;
    println!(
        "\nrotating allocation uses {} registers (MaxLive = {})",
        rr.num_regs, pressure.rr_max_live
    );

    println!("\n== kernel-only code ==");
    let kernel = emit(&problem, &schedule, &rr, &icr)?;
    print!("{}", to_asm(&kernel, &problem));

    // And prove the pipeline computes what the source says.
    let report = check_equivalence(
        compiled,
        &machine,
        &RunConfig {
            trip: 50,
            ..RunConfig::default()
        },
    )
    .map_err(std::io::Error::other)?;
    println!(
        "\npipeline verified against the reference interpreter: {} array elements identical \
         after {} cycles ({} iterations at II {})",
        report.elements, report.cycles, 50, report.ii
    );
    Ok(())
}
