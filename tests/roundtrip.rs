//! Parser ↔ printer round trips over the whole corpus: printed source
//! must re-parse to the same AST and compile to an identically shaped
//! dependence graph.

use lsms::front::{compile, lex, parse, print_loop};

#[test]
fn every_corpus_source_roundtrips() {
    let mut sources: Vec<String> = lsms::loops::kernels()
        .into_iter()
        .map(|k| k.source)
        .collect();
    sources.extend(
        lsms::loops::generate(&lsms::loops::GeneratorConfig {
            seed: 77,
            count: 150,
        })
        .into_iter()
        .map(|l| l.source),
    );
    for source in sources {
        let original = parse(&lex(&source).expect("lexes")).expect("parses");
        let printed = print_loop(&original[0]);
        let reparsed = parse(&lex(&printed).expect("printed output lexes"))
            .unwrap_or_else(|e| panic!("printed output does not parse: {e}\n{printed}"));
        assert_eq!(original[0].name, reparsed[0].name);
        assert_eq!(original[0].decls, reparsed[0].decls);
        assert_eq!(original[0].basic_blocks(), reparsed[0].basic_blocks());

        // The compiled graphs must match shape for shape.
        let a = compile(&source).expect("original compiles");
        let b = compile(&printed).expect("printed output compiles");
        let (a, b) = (&a.loops[0].body, &b.loops[0].body);
        assert_eq!(a.num_ops(), b.num_ops(), "{printed}");
        assert_eq!(a.deps().len(), b.deps().len(), "{printed}");
        assert_eq!(a.class(), b.class(), "{printed}");
        for (x, y) in a.ops().iter().zip(b.ops()) {
            assert_eq!(x.kind, y.kind, "{printed}");
            assert_eq!(x.input_omegas, y.input_omegas, "{printed}");
        }
    }
}
