//! The paper's qualitative claims, encoded as assertions over a corpus
//! slice. Absolute figures belong to the experiment binaries (see
//! EXPERIMENTS.md); these tests pin the *shape*: who wins, and in which
//! direction each metric moves.

use lsms::machine::huff_machine;
use lsms::sched::pressure::measure;
use lsms::sched::{CydromeScheduler, DirectionPolicy, SchedProblem, SlackConfig, SlackScheduler};

struct Sample {
    mii: u32,
    new_ii: u32,
    old_ii: u32,
    new_maxlive: u32,
    early_maxlive: u32,
    old_maxlive: u32,
    min_avg: u32,
    backtrack_new: u64,
    backtrack_old: u64,
}

fn collect(count: usize, seed: u64) -> Vec<Sample> {
    let machine = huff_machine();
    let mut out = Vec::new();
    for compiled in lsms::loops::corpus(count, seed) {
        let problem = match SchedProblem::new(&compiled.body, &machine) {
            Ok(p) => p,
            Err(e) => panic!("{}: {e}", compiled.def.name),
        };
        let new = SlackScheduler::new().run(&problem);
        let early = SlackScheduler::with_config(SlackConfig {
            direction: DirectionPolicy::AlwaysEarly,
            ..SlackConfig::default()
        })
        .run(&problem);
        let old = CydromeScheduler::new().run(&problem);
        let (Ok(new), Ok(early), Ok(old)) = (new, early, old) else {
            continue; // failures are counted by the experiment binaries
        };
        let new_pressure = measure(&problem, &new);
        out.push(Sample {
            mii: problem.mii(),
            new_ii: new.ii,
            old_ii: old.ii,
            new_maxlive: new_pressure.rr_max_live,
            early_maxlive: measure(&problem, &early).rr_max_live,
            old_maxlive: measure(&problem, &old).rr_max_live,
            min_avg: new_pressure.rr_min_avg,
            backtrack_new: new.stats.ejected_ops,
            backtrack_old: old.stats.ejected_ops,
        });
    }
    out
}

#[test]
fn paper_claims_hold_in_aggregate() {
    let samples = collect(150, lsms_corpus_seed());
    assert!(samples.len() >= 140, "most loops pipeline");

    // §7: "The scheduler achieved optimal execution time for 96% of the
    // loops" — require a strong majority here.
    let optimal = samples.iter().filter(|s| s.new_ii == s.mii).count();
    assert!(
        optimal * 100 >= samples.len() * 85,
        "{optimal}/{} loops at MII",
        samples.len()
    );

    // §7: overall execution within a few percent of minimum.
    let sum_ii: u64 = samples.iter().map(|s| u64::from(s.new_ii)).sum();
    let sum_mii: u64 = samples.iter().map(|s| u64::from(s.mii)).sum();
    assert!(
        (sum_ii as f64) < 1.05 * sum_mii as f64,
        "sum II {sum_ii} vs sum MII {sum_mii}"
    );

    // §7: the new scheduler is at least as fast as the old overall
    // (within sub-percent noise: individual ties can fall either way),
    // and uses fewer rotating registers in aggregate.
    let old_ii: u64 = samples.iter().map(|s| u64::from(s.old_ii)).sum();
    assert!(
        sum_ii as f64 <= old_ii as f64 * 1.005,
        "new ΣII {sum_ii} > old ΣII {old_ii}"
    );
    let new_rr: u64 = samples.iter().map(|s| u64::from(s.new_maxlive)).sum();
    let early_rr: u64 = samples.iter().map(|s| u64::from(s.early_maxlive)).sum();
    let old_rr: u64 = samples.iter().map(|s| u64::from(s.old_maxlive)).sum();
    assert!(new_rr < old_rr, "new MaxLive {new_rr} >= old {old_rr}");
    // §7: without the bidirectional heuristics, pressure is nearly the
    // old scheduler's: the ablation must sit much closer to old than new
    // does.
    assert!(
        early_rr > new_rr,
        "ablation {early_rr} should exceed bidirectional {new_rr}"
    );

    // §3.2: MinAvg is an absolute lower bound on MaxLive.
    for s in &samples {
        assert!(s.new_maxlive >= s.min_avg);
    }

    // §6: the old scheduler backtracks at least comparably much; its
    // full-corpus excess (the paper's 3.7x, our 1.3x) is measured by the
    // `compile_time` binary, where slice noise washes out.
    let bt_new: u64 = samples.iter().map(|s| s.backtrack_new).sum();
    let bt_old: u64 = samples.iter().map(|s| s.backtrack_old).sum();
    assert!(
        bt_old * 2 > bt_new,
        "old backtracking {bt_old} wildly below new {bt_new}"
    );
}

#[test]
fn all_four_loop_classes_appear_and_neither_is_largest() {
    use lsms::ir::LoopClass;
    let corpus = lsms::loops::corpus(300, lsms_corpus_seed());
    let count = |c: LoopClass| corpus.iter().filter(|l| l.body.class() == c).count();
    let neither = count(LoopClass::Neither);
    let conditional = count(LoopClass::Conditional);
    let recurrence = count(LoopClass::Recurrence);
    let both = count(LoopClass::Both);
    assert!(neither > 0 && conditional > 0 && recurrence > 0 && both > 0);
    // Table 3's marginals: Neither is the biggest class; Both the
    // smallest of the recurrence-bearing ones.
    assert!(neither >= conditional && neither >= recurrence && neither >= both);
    assert!(both < recurrence);
}

fn lsms_corpus_seed() -> u64 {
    1993
}
