//! End-to-end integration: source text → dependence analysis → slack
//! scheduling → rotating allocation → kernel code → simulated execution,
//! with every stage checked by an independent oracle.

use lsms::front::compile;
use lsms::ir::RegClass;
use lsms::machine::{alternate_machines, huff_machine};
use lsms::regalloc::{allocate_rotating, verify_allocation, Strategy};
use lsms::sched::{validate, SchedProblem, SlackScheduler};
use lsms::sim::{check_equivalence, RunConfig};

#[test]
fn every_kernel_survives_the_whole_pipeline() {
    let machine = huff_machine();
    for kernel in lsms::loops::kernels() {
        let unit = compile(&kernel.source).expect("kernels compile");
        let compiled = &unit.loops[0];
        let report = check_equivalence(compiled, &machine, &RunConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert!(report.elements > 0, "{}", kernel.name);
    }
}

#[test]
fn kernels_simulate_correctly_at_edge_trip_counts() {
    let machine = huff_machine();
    // Trip counts below, at, and above the stage count exercise ramp-up
    // and ramp-down predication.
    for kernel in lsms::loops::kernels().into_iter().take(8) {
        let unit = compile(&kernel.source).expect("kernels compile");
        let compiled = &unit.loops[0];
        for trip in [1, 2, 3, 13, 64] {
            let config = RunConfig {
                trip,
                seed: trip * 7 + 1,
                ..RunConfig::default()
            };
            check_equivalence(compiled, &machine, &config)
                .unwrap_or_else(|e| panic!("{} at trip {trip}: {e}", kernel.name));
        }
    }
}

#[test]
fn generated_corpus_slice_schedules_validates_and_allocates() {
    let machine = huff_machine();
    for compiled in lsms::loops::corpus(60, 0xfeed) {
        let problem = SchedProblem::new(&compiled.body, &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", compiled.def.name));
        let schedule = SlackScheduler::new()
            .run(&problem)
            .unwrap_or_else(|e| panic!("{}: {e}", compiled.def.name));
        assert_eq!(
            validate(&problem, &schedule),
            Ok(()),
            "{}",
            compiled.def.name
        );
        for class in [RegClass::Rr, RegClass::Icr] {
            let alloc = allocate_rotating(&problem, &schedule, class, Strategy::default())
                .unwrap_or_else(|e| panic!("{}: {e}", compiled.def.name));
            verify_allocation(&problem, &schedule, class, &alloc, 12).unwrap_or_else(
                |(a, b, r)| panic!("{}: {a} and {b} collide in r{r}", compiled.def.name),
            );
        }
    }
}

#[test]
fn generated_corpus_slice_simulates_correctly() {
    let machine = huff_machine();
    for compiled in lsms::loops::corpus(40, 0xbeef) {
        let config = RunConfig {
            trip: 17,
            seed: 0xabc,
            ..RunConfig::default()
        };
        check_equivalence(&compiled, &machine, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", compiled.def.name));
    }
}

#[test]
fn pipeline_holds_on_alternative_machines() {
    for machine in alternate_machines() {
        for kernel in lsms::loops::kernels().into_iter().take(6) {
            let unit = compile(&kernel.source).expect("kernels compile");
            check_equivalence(&unit.loops[0], &machine, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, machine.name()));
        }
    }
}

#[test]
fn figure1_reproduces_the_papers_numbers() {
    let machine = huff_machine();
    let unit = compile(
        "loop sample(i = 3..n) {
             real x[], y[];
             x[i] = x[i-1] + y[i-2];
             y[i] = y[i-1] + x[i-2];
         }",
    )
    .expect("sample compiles");
    let compiled = &unit.loops[0];
    let problem = SchedProblem::new(&compiled.body, &machine).expect("problem builds");
    // §2.3/Figure 3: the sample loop runs at II = 2.
    assert_eq!(problem.mii(), 2);
    let schedule = SlackScheduler::new().run(&problem).expect("schedules");
    assert_eq!(schedule.ii, 2);
    // The two recurrence values' lifetimes wrap around II as in Figure 4:
    // both x and y stay live for more than II cycles.
    let lt = lsms::sched::pressure::lifetimes(&problem, &schedule);
    let long_lived = compiled
        .body
        .values()
        .iter()
        .filter(|v| v.reg_class() == lsms::ir::RegClass::Rr)
        .filter(|v| lt[v.id.index()].unwrap_or(0) > i64::from(schedule.ii))
        .count();
    assert!(
        long_lived >= 2,
        "x and y live longer than II, needing rotation"
    );
}
