//! Budget-driven degradation: a blown `--pass-budget` on the scheduling
//! pass caps II escalation and falls back through the backend registry —
//! to the Cydrome baseline by default, or to whatever `degrade_to` names —
//! instead of failing the loop outright.

use std::time::Duration;

use lsms::machine::huff_machine;
use lsms::pipeline::{BackendSelection, CompileSession, PassBudget, SessionConfig};
use lsms::sched::{validate, SchedProblem};

/// The §2.3 sample loop: small, schedulable by every backend.
const SOURCE: &str = "loop sample(i = 3..n) {
    real x[], y[];
    x[i] = x[i-1] + y[i-2];
    y[i] = y[i-1] + x[i-2];
}";

/// A slack backend starved of its iteration budget: every II attempt
/// gives up immediately, so escalation runs until something stops it.
fn starved_slack() -> BackendSelection {
    BackendSelection::parse("slack:budget-factor=0").expect("static backend spec")
}

#[test]
fn blown_schedule_budget_degrades_to_cydrome() {
    let mut config = SessionConfig::new(huff_machine());
    config.backend = starved_slack();
    // The zero wall-clock deadline is blown by the time the first failed
    // attempt checks it, capping the escalation right there.
    config.budgets = vec![PassBudget {
        pass: "schedule:slack",
        limit: Duration::ZERO,
    }];
    let session = CompileSession::new(config);
    let unit = session.compile_source(SOURCE).expect("compiles");
    let artifacts = session
        .run_loop(&unit.loops[0])
        .expect("degraded loop still compiles");

    // The schedule that came back is the baseline's, and it is valid.
    let machine = huff_machine();
    let problem = SchedProblem::new(&artifacts.body, &machine).unwrap();
    assert_eq!(validate(&problem, &artifacts.schedule), Ok(()));

    let report = session.report();
    let slack = report.get("schedule:slack").expect("primary pass recorded");
    assert_eq!(slack.counters.get("budget_capped"), Some(&1));
    // A capped run is not a pipeline failure: the fallback decides that.
    assert_eq!(slack.counters.get("failures"), Some(&0));
    let cydrome = report.get("schedule:cydrome").expect("fallback recorded");
    assert_eq!(cydrome.counters.get("degraded"), Some(&1));
    assert_eq!(cydrome.counters.get("failures"), Some(&0));
}

#[test]
fn degradation_target_is_routed_through_the_registry() {
    let mut config = SessionConfig::new(huff_machine());
    config.backend = starved_slack();
    config.degrade_to = "early".to_owned();
    config.budgets = vec![PassBudget {
        pass: "schedule:slack",
        limit: Duration::ZERO,
    }];
    let session = CompileSession::new(config);
    session.validate().expect("early is a registered backend");
    let unit = session.compile_source(SOURCE).expect("compiles");
    let artifacts = session.run_loop(&unit.loops[0]).expect("degrades to early");
    assert!(artifacts.schedule.ii >= 2);

    let report = session.report();
    let early = report.get("schedule:early").expect("fallback recorded");
    assert_eq!(early.counters.get("degraded"), Some(&1));
    assert!(report.get("schedule:cydrome").is_none());

    // An unknown degradation target is an eager E0003 from validate().
    let mut config = SessionConfig::new(huff_machine());
    config.degrade_to = "quantum".to_owned();
    let err = CompileSession::new(config).validate().unwrap_err();
    assert_eq!(err.code, "E0003");
    assert!(err.message.contains("degradation"), "{}", err.message);
}

#[test]
fn without_a_budget_the_starved_scheduler_fails_outright() {
    let mut config = SessionConfig::new(huff_machine());
    config.backend = starved_slack();
    let session = CompileSession::new(config);
    let unit = session.compile_source(SOURCE).expect("compiles");
    let err = session
        .run_loop(&unit.loops[0])
        .expect_err("no deadline, no fallback: the loop fails");
    assert_eq!(err.code, "E0501");

    let report = session.report();
    let slack = report.get("schedule:slack").expect("recorded");
    assert_eq!(slack.counters.get("failures"), Some(&1));
    assert!(!slack.counters.contains_key("budget_capped"));
    assert!(report.get("schedule:cydrome").is_none());
}

#[test]
fn a_generous_budget_never_degrades() {
    let mut config = SessionConfig::new(huff_machine());
    config.budgets = vec![PassBudget {
        pass: "schedule:slack",
        limit: Duration::from_secs(3600),
    }];
    let session = CompileSession::new(config);
    let unit = session.compile_source(SOURCE).expect("compiles");
    let artifacts = session.run_loop(&unit.loops[0]).expect("schedules");
    // §2.3/Figure 3: the sample loop runs at II = 2 — the deadline left
    // the slack scheduler's result untouched.
    assert_eq!(artifacts.schedule.ii, 2);

    let report = session.report();
    let slack = report.get("schedule:slack").expect("recorded");
    assert!(!slack.counters.contains_key("budget_capped"));
    assert!(report.get("schedule:cydrome").is_none());
}
