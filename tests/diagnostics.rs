//! Golden rendering of one diagnostic from every pipeline stage.
//!
//! The `error[CODE]: FILE:LINE:COL: message [stage]` format, the stable
//! error codes, and the per-stage exit codes are a contract: scripts
//! match on them, so changes here must be deliberate.

use lsms::front::{FrontError, Span};
use lsms::ir::{LoopBuilder, OpKind, ValueId, ValueType};
use lsms::machine::huff_machine;
use lsms::pipeline::{
    BackendSelection, CompileSession, LsmsError, SessionConfig, Stage, VerifySpec,
};
use lsms::regalloc::AllocError;
use lsms::sched::{SchedFailure, SchedProblem, SchedStats, ScheduleError};
use lsms::sim::SimError;

const DAXPY: &str = "loop daxpy(i = 1..n) { real x[], y[]; param real a;
     y[i] = y[i] + a * x[i]; }";

fn check(err: &LsmsError, stage: Stage, code: &str, exit: u8, rendered: &str) {
    assert_eq!(err.stage, stage);
    assert_eq!(err.code, code);
    assert_eq!(err.exit_code(), exit);
    assert_eq!(err.render(Some("t.loop")), rendered);
}

#[test]
fn usage_diagnostic() {
    let mut config = SessionConfig::new(huff_machine());
    config.unroll = 2;
    config.verify = Some(VerifySpec::with_trip(10));
    let session = CompileSession::new(config);
    let unit = session.compile_source(DAXPY).expect("compiles");
    let err = session.run_loop(&unit.loops[0]).unwrap_err();
    check(
        &err,
        Stage::Usage,
        "E0002",
        2,
        "error[E0002]: t.loop: simulate-verify applies to the plain modulo \
         pipeline only (drop --unroll / --straight-line) [usage]",
    );
}

#[test]
fn backend_diagnostics() {
    // An unknown --backend name lists the registered backends. This test
    // binary registers nothing, so the list is exactly the built-ins.
    let mut config = SessionConfig::new(huff_machine());
    config.backend = BackendSelection::named("quantum");
    let err = CompileSession::new(config).validate().unwrap_err();
    check(
        &err,
        Stage::Usage,
        "E0003",
        2,
        "error[E0003]: t.loop: unknown backend `quantum` \
         (backends: slack, early, late, cydrome) [usage]",
    );

    // A malformed option spec fails at parse time with the same code.
    let err = BackendSelection::parse("slack:increment").unwrap_err();
    check(
        &err,
        Stage::Usage,
        "E0003",
        2,
        "error[E0003]: t.loop: malformed backend option `increment` \
         (want key=value) [usage]",
    );

    // An option the backend rejects carries the backend's complaint.
    let mut config = SessionConfig::new(huff_machine());
    config.backend = BackendSelection::parse("cydrome:increment=by-one").expect("parses");
    let err = CompileSession::new(config).validate().unwrap_err();
    check(
        &err,
        Stage::Usage,
        "E0003",
        2,
        "error[E0003]: t.loop: backend `cydrome`: unknown option `increment` \
         (options: budget-factor, max-ii) [usage]",
    );
}

#[test]
fn io_diagnostic() {
    let session = CompileSession::with_machine(huff_machine());
    let err = session
        .compile_file("/nonexistent/lsms/t.loop")
        .unwrap_err();
    assert_eq!(err.stage, Stage::Io);
    assert_eq!(err.code, "E0001");
    assert_eq!(err.exit_code(), 3);
    assert!(err
        .message
        .starts_with("cannot read /nonexistent/lsms/t.loop"));
}

#[test]
fn parse_diagnostic_carries_the_span() {
    let session = CompileSession::with_machine(huff_machine());
    let err = session.compile_source("loop broken(\n").unwrap_err();
    check(
        &err,
        Stage::Parse,
        "E0101",
        4,
        "error[E0101]: t.loop:2:1: expected induction variable, \
         found end of input [parse]",
    );
}

#[test]
fn sema_diagnostic_carries_the_span() {
    let session = CompileSession::with_machine(huff_machine());
    let err = session
        .compile_source("loop t(i = 1..n) { real x[]; x[i] = y + 1.0; }")
        .unwrap_err();
    check(
        &err,
        Stage::Sema,
        "E0201",
        5,
        "error[E0201]: t.loop:1:37: undeclared scalar `y` [sema]",
    );
}

#[test]
fn lower_diagnostic() {
    // The lowering walk reports through the same front-end error type.
    let err = LsmsError::from_front(
        FrontError {
            span: Span { line: 4, col: 2 },
            message: "recurrence distance is not constant".to_owned(),
        },
        Stage::Lower,
    );
    check(
        &err,
        Stage::Lower,
        "E0301",
        6,
        "error[E0301]: t.loop:4:2: recurrence distance is not constant [lower]",
    );
}

#[test]
fn depgraph_diagnostic_from_a_real_zero_omega_circuit() {
    let mut b = LoopBuilder::new("bad");
    let x = b.new_value(ValueType::Float);
    let y = b.new_value(ValueType::Float);
    let o1 = b.op(OpKind::FAdd, &[y, y], Some(x));
    let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
    b.flow_dep(o1, o2, 0);
    b.flow_dep(o2, o1, 0);
    let body = b.finish();
    let machine = huff_machine();
    let err: LsmsError = SchedProblem::new(&body, &machine).unwrap_err().into();
    check(
        &err,
        Stage::DepGraph,
        "E0402",
        7,
        "error[E0402]: t.loop: dependence circuit with zero total omega \
         (unschedulable) [depgraph]",
    );
}

#[test]
fn schedule_diagnostics() {
    let err: LsmsError = SchedFailure {
        last_ii: 17,
        stats: SchedStats {
            attempts: 5,
            ..SchedStats::default()
        },
        deadline_capped: false,
    }
    .into();
    check(
        &err,
        Stage::Schedule,
        "E0501",
        8,
        "error[E0501]: t.loop: no feasible schedule up to II 17 \
         (5 II attempts) [schedule]",
    );
    let err: LsmsError = ScheduleError::WrongShape.into();
    check(
        &err,
        Stage::Schedule,
        "E0502",
        8,
        "error[E0502]: t.loop: schedule validation failed: schedule has \
         wrong number of times [schedule]",
    );
}

#[test]
fn regalloc_diagnostic() {
    let err: LsmsError = AllocError::CapExceeded { cap: 128 }.into();
    check(
        &err,
        Stage::Regalloc,
        "E0601",
        9,
        "error[E0601]: t.loop: no conflict-free rotating allocation within \
         128 registers [regalloc]",
    );
}

#[test]
fn codegen_diagnostic() {
    let err: LsmsError = lsms::codegen::CodegenError::MissingAllocation(ValueId::new(3)).into();
    assert_eq!(err.stage, Stage::Codegen);
    assert_eq!(err.code, "E0701");
    assert_eq!(err.exit_code(), 10);
}

#[test]
fn simulate_diagnostics() {
    let err: LsmsError = SimError::MissingParam("a".to_owned()).into();
    check(
        &err,
        Stage::Simulate,
        "E0801",
        11,
        "error[E0801]: t.loop: parameter `a` missing from workspace [simulate]",
    );
    let err = LsmsError::verification("element 3 of `y` differs");
    check(
        &err,
        Stage::Simulate,
        "E0802",
        11,
        "error[E0802]: t.loop: element 3 of `y` differs [simulate]",
    );
}

#[test]
fn exit_codes_are_distinct_and_stable() {
    let stages = [
        (Stage::Usage, 2),
        (Stage::Io, 3),
        (Stage::Parse, 4),
        (Stage::Sema, 5),
        (Stage::Lower, 6),
        (Stage::DepGraph, 7),
        (Stage::Schedule, 8),
        (Stage::Regalloc, 9),
        (Stage::Codegen, 10),
        (Stage::Simulate, 11),
    ];
    for (stage, exit) in stages {
        assert_eq!(stage.exit_code(), exit, "{stage:?}");
    }
}
