//! The registry's extension guarantee: a scheduler backend defined
//! entirely outside the workspace crates — here, inside this test binary
//! — registers, resolves by name, schedules the corpus, and shows up in
//! `--list-backends`, `PassReport` (`--timings`), and the trace, without
//! touching `lsms-pipeline` internals or its dispatch code.

use std::sync::{Arc, OnceLock};

use lsms::machine::huff_machine;
use lsms::pipeline::{
    list_backends_text, register_backend, registered_backends, BackendSelection, CompileSession,
    SessionConfig,
};
use lsms::sched::{
    BackendCaps, BackendInfo, BackendRun, EngineWorkspace, MinDistCache, ModuloScheduler,
    SchedContext, SchedProblem, SlackBackend, SlackConfig, SlackScheduler,
};

/// A synthetic backend that wraps the slack scheduler and perturbs
/// nothing: same schedules, same failures, new name.
#[derive(Debug)]
struct EchoBackend {
    inner: SlackBackend,
}

impl Default for EchoBackend {
    fn default() -> Self {
        Self {
            inner: SlackBackend::bidirectional(),
        }
    }
}

impl ModuloScheduler for EchoBackend {
    fn name(&self) -> &str {
        "echo"
    }

    fn describe(&self) -> BackendInfo {
        BackendInfo {
            summary: "test-only echo of the slack scheduler".to_owned(),
            details: String::new(),
        }
    }

    fn capabilities(&self) -> BackendCaps {
        self.inner.capabilities()
    }

    fn configure(&self, options: &[(String, String)]) -> Result<Arc<dyn ModuloScheduler>, String> {
        if options.is_empty() {
            Ok(Arc::new(Self::default()))
        } else {
            Err("echo takes no options".to_owned())
        }
    }

    fn verify_config(&self) -> Option<SlackConfig> {
        self.inner.verify_config()
    }

    fn run(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
        ctx: &SchedContext,
    ) -> BackendRun {
        self.inner.run(problem, cache, ws, ctx)
    }
}

/// Registers `echo` exactly once, however many tests run first.
fn ensure_echo() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        register_backend(Arc::new(EchoBackend::default())).expect("first registration succeeds");
    });
}

#[test]
fn external_backend_registers_schedules_and_traces() {
    ensure_echo();

    // Listed alongside the built-ins, with its summary and flags.
    assert!(registered_backends()
        .iter()
        .any(|e| e.scheduler.name() == "echo" && e.pass == "schedule:echo"));
    let listing = list_backends_text();
    assert!(listing.contains("echo"), "{listing}");
    assert!(
        listing.contains("test-only echo of the slack scheduler"),
        "{listing}"
    );

    // A second registration under the same name is a stable E0003.
    let err = register_backend(Arc::new(EchoBackend::default())).unwrap_err();
    assert_eq!(err.code, "E0003");
    assert!(
        err.message.contains("already registered"),
        "{}",
        err.message
    );

    // A session selects it by name — no pipeline edits anywhere.
    let machine = huff_machine();
    let mut config = SessionConfig::new(machine.clone());
    config.backend = BackendSelection::named("echo");
    let session = CompileSession::new(config);
    session.validate().expect("echo resolves");

    let loops = lsms::loops::corpus(8, lsms_bench::CORPUS_SEED);
    lsms_trace::set_enabled(true);
    for l in &loops {
        let via_echo = session.run_loop(l);
        // Byte-identical to the scheduler it wraps.
        let problem = SchedProblem::new(&l.body, &machine).expect("well-formed");
        let cache = MinDistCache::new();
        match SlackScheduler::new().run_cached(&problem, &cache) {
            Ok(expected) => {
                let artifacts = via_echo.expect("echo schedules what slack schedules");
                assert_eq!(expected.ii, artifacts.schedule.ii, "{}", l.def.name);
                assert_eq!(expected.times, artifacts.schedule.times, "{}", l.def.name);
                assert_eq!(
                    expected.assignments, artifacts.schedule.assignments,
                    "{}",
                    l.def.name
                );
            }
            Err(_) => assert!(via_echo.is_err(), "{}", l.def.name),
        }
    }
    lsms_trace::set_enabled(false);
    let trace = lsms_trace::drain();

    // Trace spans and metrics appear under the derived pass label.
    let has_span = trace
        .threads
        .iter()
        .flat_map(|t| &t.events)
        .any(|e| e.name == "schedule:echo");
    assert!(has_span, "no schedule:echo span in the trace");
    assert_eq!(
        trace.metrics.counter("schedule:echo", "invocations"),
        loops.len() as u64
    );

    // The PassReport row (the --timings table) carries the same label.
    let report = session.report();
    let record = report.get("schedule:echo").expect("echo pass recorded");
    assert_eq!(record.invocations, loops.len() as u64);
    assert!(record.counters.contains_key("ii"), "{:?}", record.counters);
}

#[test]
fn external_backend_can_verify_and_explain() {
    ensure_echo();

    // verify_config delegates to the wrapped slack scheduler, so the
    // simulate-verify pass works through the synthetic backend too.
    let mut config = SessionConfig::new(huff_machine());
    config.backend = BackendSelection::named("echo");
    config.verify = Some(lsms::pipeline::VerifySpec::with_trip(10));
    config.codegen = true;
    let session = CompileSession::new(config);
    let unit = session
        .compile_source(
            "loop daxpy(i = 1..n) { real x[], y[]; param real a;
             y[i] = y[i] + a * x[i]; }",
        )
        .expect("compiles");
    session
        .run_loop(&unit.loops[0])
        .expect("verified through the synthetic backend");

    // Empty details render as the graceful explain fallback.
    let entry = lsms::pipeline::lookup_backend("echo").expect("registered");
    assert!(entry.scheduler.describe().details.is_empty());
}
