//! The refactor guarantee: corpus evaluation through
//! [`lsms::pipeline::CompileSession`] produces records identical to the
//! pre-refactor hand-wired stage sequence.
//!
//! `old_style_evaluate` below is a faithful copy of the evaluation the
//! bench crate performed before the session existed (problem → three
//! cached scheduler runs → bounds and pressure, one shared
//! `MinDistCache`). Every field except wall-clock time must match, and
//! the paper-table rows rendered from the records must be byte-identical.

use lsms::machine::{huff_machine, Machine};
use lsms::pipeline::CompileSession;
use lsms::sched::pressure::{gpr_count, measure_cached, min_avg_cached};
use lsms::sched::{
    bounds, CydromeScheduler, DecisionStats, DirectionPolicy, MinDistCache, PressureReport,
    SchedProblem, SchedStats, Schedule, SlackConfig, SlackScheduler,
};
use lsms_bench::{class_line, LoopRecord, SchedOutcome, CORPUS_SEED};

/// What one scheduler produced, minus wall-clock time.
struct OldOutcome {
    ii: Option<u32>,
    last_ii: u32,
    pressure: Option<PressureReport>,
    stats: SchedStats,
}

fn old_outcome(
    result: Result<Schedule, lsms::sched::SchedFailure>,
    problem: &SchedProblem<'_>,
    cache: &MinDistCache,
) -> OldOutcome {
    match result {
        Ok(schedule) => OldOutcome {
            ii: Some(schedule.ii),
            last_ii: schedule.ii,
            pressure: Some(measure_cached(problem, &schedule, cache)),
            stats: schedule.stats,
        },
        Err(failure) => OldOutcome {
            ii: None,
            last_ii: failure.last_ii,
            pressure: None,
            stats: failure.stats,
        },
    }
}

/// The pre-refactor evaluation, stage wiring spelled out by hand.
struct OldRecord {
    rec_mii: u32,
    res_mii: u32,
    mii: u32,
    min_avg_at_mii: u32,
    gprs: u32,
    critical_ops: usize,
    ops_on_recurrences: usize,
    new: OldOutcome,
    early: OldOutcome,
    old: OldOutcome,
    decisions: DecisionStats,
}

fn old_style_evaluate(compiled: &lsms::front::CompiledLoop, machine: &Machine) -> OldRecord {
    let body = &compiled.body;
    let problem = SchedProblem::new(body, machine).expect("corpus loops are well-formed");
    let mii = problem.mii();
    let cache = MinDistCache::new();

    let run_slack = |direction: DirectionPolicy| {
        let scheduler = SlackScheduler::with_config(SlackConfig {
            direction,
            ..SlackConfig::default()
        });
        let (result, decisions) = scheduler.run_with_decisions_cached(&problem, &cache);
        (old_outcome(result, &problem, &cache), decisions)
    };
    let (new, decisions) = run_slack(DirectionPolicy::Bidirectional);
    let (early, _) = run_slack(DirectionPolicy::AlwaysEarly);
    let old = old_outcome(
        CydromeScheduler::new().run_cached(&problem, &cache),
        &problem,
        &cache,
    );

    OldRecord {
        rec_mii: problem.rec_mii(),
        res_mii: problem.res_mii(),
        mii,
        min_avg_at_mii: min_avg_cached(&problem, mii, &cache),
        gprs: gpr_count(&problem),
        critical_ops: bounds::critical_ops(machine, body, mii),
        ops_on_recurrences: bounds::ops_on_recurrences(body),
        new,
        early,
        old,
        decisions,
    }
}

fn assert_outcomes_match(name: &str, which: &str, old: &OldOutcome, new: &SchedOutcome) {
    assert_eq!(old.ii, new.ii, "{name} {which} ii");
    assert_eq!(old.last_ii, new.last_ii, "{name} {which} last_ii");
    assert_eq!(old.pressure, new.pressure, "{name} {which} pressure");
    // Stats match except wall-clock time.
    let counters = |s: &SchedStats| {
        (
            s.central_iterations,
            s.step3_invocations,
            s.ejected_ops,
            s.step6_restarts,
            s.attempts,
        )
    };
    assert_eq!(
        counters(&old.stats),
        counters(&new.stats),
        "{name} {which} stats"
    );
}

#[test]
fn session_records_match_the_pre_refactor_path() {
    let machine = huff_machine();
    let session = CompileSession::with_machine(machine.clone());
    let loops = lsms::loops::corpus(20, CORPUS_SEED);

    let mut session_records = Vec::new();
    for l in &loops {
        let old = old_style_evaluate(l, &machine);
        let new = LoopRecord::try_evaluate(&session, l).expect("corpus loop evaluates");

        assert_eq!(old.rec_mii, new.rec_mii, "{}", l.def.name);
        assert_eq!(old.res_mii, new.res_mii, "{}", l.def.name);
        assert_eq!(old.mii, new.mii, "{}", l.def.name);
        assert_eq!(old.min_avg_at_mii, new.min_avg_at_mii, "{}", l.def.name);
        assert_eq!(old.gprs, new.gprs, "{}", l.def.name);
        assert_eq!(old.critical_ops, new.critical_ops, "{}", l.def.name);
        assert_eq!(
            old.ops_on_recurrences, new.ops_on_recurrences,
            "{}",
            l.def.name
        );
        assert_eq!(old.decisions, new.decisions, "{}", l.def.name);
        assert_outcomes_match(&l.def.name, "new", &old.new, &new.new);
        assert_outcomes_match(&l.def.name, "early", &old.early, &new.early);
        assert_outcomes_match(&l.def.name, "old", &old.old, &new.old);
        session_records.push(new);
    }

    // The paper-table rows built from session records are byte-identical
    // to rows built from pre-refactor outcomes: render both from the same
    // formatting code over the matched data.
    fn pick_new(r: &LoopRecord) -> &SchedOutcome {
        &r.new
    }
    fn pick_early(r: &LoopRecord) -> &SchedOutcome {
        &r.early
    }
    fn pick_old_variant(r: &LoopRecord) -> &SchedOutcome {
        &r.old
    }
    fn old_new(r: &OldRecord) -> &OldOutcome {
        &r.new
    }
    fn old_early(r: &OldRecord) -> &OldOutcome {
        &r.early
    }
    fn old_old(r: &OldRecord) -> &OldOutcome {
        &r.old
    }
    type Pick = for<'a> fn(&'a LoopRecord) -> &'a SchedOutcome;
    type PickOld = for<'a> fn(&'a OldRecord) -> &'a OldOutcome;

    let refs: Vec<&LoopRecord> = session_records.iter().collect();
    let olds: Vec<OldRecord> = loops
        .iter()
        .map(|l| old_style_evaluate(l, &machine))
        .collect();
    let picks: [(&str, Pick, PickOld); 3] = [
        ("new", pick_new, old_new),
        ("early", pick_early, old_early),
        ("old", pick_old_variant, old_old),
    ];
    for (label, pick, pick_old) in picks {
        let from_session = class_line(label, &refs, pick);
        // Recompute the row from the hand-wired outcomes.
        let all = olds.len();
        let optimal = olds
            .iter()
            .filter(|r| pick_old(r).ii == Some(r.mii))
            .count();
        let sum_ii: u64 = olds
            .iter()
            .map(|r| u64::from(pick_old(r).ii.unwrap_or(pick_old(r).last_ii)))
            .sum();
        let sum_mii: u64 = olds.iter().map(|r| u64::from(r.mii)).sum();
        let pct = 100.0 * optimal as f64 / all.max(1) as f64;
        let ratio = sum_ii as f64 / sum_mii.max(1) as f64;
        let from_old = format!(
            "{label:<18} {optimal:>5} {all:>5} {pct:>5.1}% {sum_ii:>8} {sum_mii:>8} {ratio:>6.3}"
        );
        assert_eq!(from_session, from_old, "{label} row diverged");
    }
}

/// The registry guarantee: every backend that was reachable through the
/// retired `SchedulerBackend` enum produces byte-identical schedules and
/// `PassReport` rows when dispatched through the trait-object registry.
#[test]
fn registry_backends_match_their_enum_era_schedulers() {
    use lsms::pipeline::{BackendSelection, SessionConfig};

    let machine = huff_machine();
    let loops = lsms::loops::corpus(12, CORPUS_SEED);

    // The enum-era dispatch, spelled out by hand: a direct scheduler call
    // per variant, exactly as session.rs matched before the registry.
    let enum_era = |name: &str,
                    problem: &SchedProblem<'_>,
                    cache: &MinDistCache|
     -> Result<Schedule, lsms::sched::SchedFailure> {
        let slack = |direction| {
            SlackScheduler::with_config(SlackConfig {
                direction,
                ..SlackConfig::default()
            })
            .run_cached(problem, cache)
        };
        match name {
            "slack" => slack(DirectionPolicy::Bidirectional),
            "early" => slack(DirectionPolicy::AlwaysEarly),
            "late" => slack(DirectionPolicy::AlwaysLate),
            "cydrome" => CydromeScheduler::new().run_cached(problem, cache),
            _ => unreachable!("enum-era backend"),
        }
    };

    for name in ["slack", "early", "late", "cydrome"] {
        let mut config = SessionConfig::new(machine.clone());
        config.backend = BackendSelection::named(name);
        let session = CompileSession::new(config);
        let pass = format!("schedule:{name}");

        let mut invocations = 0u64;
        let mut sum_ii = 0u64;
        let mut failures = 0u64;
        let mut sum_attempts = 0u64;
        for l in &loops {
            let problem = SchedProblem::new(&l.body, &machine).expect("well-formed");
            let cache = MinDistCache::new();
            invocations += 1;
            match enum_era(name, &problem, &cache) {
                Ok(expected) => {
                    let artifacts = session.run_loop(l).expect("registry path schedules too");
                    // Byte-identical schedule through the registry.
                    assert_eq!(expected.ii, artifacts.schedule.ii, "{name} {}", l.def.name);
                    assert_eq!(
                        expected.times, artifacts.schedule.times,
                        "{name} {}",
                        l.def.name
                    );
                    assert_eq!(
                        expected.assignments, artifacts.schedule.assignments,
                        "{name} {}",
                        l.def.name
                    );
                    sum_ii += u64::from(expected.ii);
                    sum_attempts += u64::from(expected.stats.attempts);
                }
                Err(failure) => {
                    let err = session.run_loop(l).expect_err("registry path fails too");
                    assert_eq!(err.code, "E0501", "{name} {}", l.def.name);
                    failures += 1;
                    sum_attempts += u64::from(failure.stats.attempts);
                }
            }
        }

        // The PassReport row carries the same label and work counters the
        // enum-era dispatch recorded.
        let report = session.report();
        let record = report.get(&pass).expect("schedule pass recorded");
        assert_eq!(record.name, pass, "{name}");
        assert_eq!(record.invocations, invocations, "{name}");
        assert_eq!(record.counters.get("ii"), Some(&sum_ii), "{name}");
        assert_eq!(record.counters.get("failures"), Some(&failures), "{name}");
        assert_eq!(
            record.counters.get("attempts"),
            Some(&sum_attempts),
            "{name}"
        );
    }
}

#[test]
fn parallel_session_evaluation_is_deterministic() {
    let session = CompileSession::with_machine(huff_machine());
    let one = lsms_bench::evaluate_corpus_session(&session, 16, CORPUS_SEED, 1);
    let four = lsms_bench::evaluate_corpus_session(&session, 16, CORPUS_SEED, 4);
    assert!(one.failures.is_empty());
    assert!(four.failures.is_empty());
    assert_eq!(one.records.len(), four.records.len());
    for (a, b) in one.records.iter().zip(&four.records) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.new.ii, b.new.ii, "{}", a.name);
        assert_eq!(a.early.ii, b.early.ii, "{}", a.name);
        assert_eq!(a.old.ii, b.old.ii, "{}", a.name);
    }
}
