//! The strongest whole-system property: any generated loop, pipelined by
//! any direction policy, computes bit-for-bit what the source says.

use lsms::machine::huff_machine;
use lsms::sched::{DirectionPolicy, SlackConfig};
use lsms::sim::{check_equivalence, RunConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_loops_compute_correctly_through_the_pipeline(
        seed in 0u64..10_000,
        trip in 1u64..40,
        policy_sel in 0u8..3,
    ) {
        let loops = lsms::loops::generate(&lsms::loops::GeneratorConfig { seed, count: 1 });
        let unit = lsms::front::compile(&loops[0].source).expect("generator emits valid DSL");
        let machine = huff_machine();
        let policy = match policy_sel {
            0 => DirectionPolicy::Bidirectional,
            1 => DirectionPolicy::AlwaysEarly,
            _ => DirectionPolicy::AlwaysLate,
        };
        let config = RunConfig {
            trip,
            seed: seed ^ 0xdead_beef,
            scheduler: SlackConfig { direction: policy, ..SlackConfig::default() },
        };
        // Scheduling failure is acceptable (counted elsewhere); incorrect
        // computation never is.
        match check_equivalence(&unit.loops[0], &machine, &config) {
            Ok(report) => prop_assert!(report.elements > 0),
            Err(e) => {
                prop_assert!(
                    e.starts_with("schedule:"),
                    "non-scheduling failure on seed {seed}: {e}"
                );
            }
        }
    }
}
