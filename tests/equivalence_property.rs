//! The strongest whole-system property: any generated loop, pipelined by
//! any direction policy, computes bit-for-bit what the source says.
//!
//! Formerly a `proptest` suite; rewritten over the vendored deterministic
//! PRNG so the workspace builds without external crates.

use lsms::machine::huff_machine;
use lsms::sched::{DirectionPolicy, SlackConfig};
use lsms::sim::{check_equivalence, RunConfig};
use lsms_prng::SmallRng;

#[test]
fn random_loops_compute_correctly_through_the_pipeline() {
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0xe9a1 + case);
        let seed = rng.gen_range(0..10_000u64);
        let trip = rng.gen_range(1..40u64);
        let policy_sel = rng.gen_range(0..3u8);
        let loops = lsms::loops::generate(&lsms::loops::GeneratorConfig { seed, count: 1 });
        let unit = lsms::front::compile(&loops[0].source).expect("generator emits valid DSL");
        let machine = huff_machine();
        let policy = match policy_sel {
            0 => DirectionPolicy::Bidirectional,
            1 => DirectionPolicy::AlwaysEarly,
            _ => DirectionPolicy::AlwaysLate,
        };
        let config = RunConfig {
            trip,
            seed: seed ^ 0xdead_beef,
            scheduler: SlackConfig {
                direction: policy,
                ..SlackConfig::default()
            },
        };
        // Scheduling failure is acceptable (counted elsewhere); incorrect
        // computation never is.
        match check_equivalence(&unit.loops[0], &machine, &config) {
            Ok(report) => assert!(report.elements > 0, "case {case} seed {seed}"),
            Err(e) => {
                assert!(
                    e.starts_with("schedule:"),
                    "non-scheduling failure on seed {seed}: {e}"
                );
            }
        }
    }
}
