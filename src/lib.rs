//! # Lifetime-Sensitive Modulo Scheduling
//!
//! A from-scratch reproduction of Richard A. Huff, *Lifetime-Sensitive
//! Modulo Scheduling* (PLDI 1993): software pipelining for minimal
//! register pressure without sacrificing the loop's minimum execution
//! time, together with every substrate the paper's evaluation rests on.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`ir`] — the ω-labelled dependence-graph IR;
//! * [`machine`] — the Cydra-5-like VLIW model (Table 1) and the modulo
//!   resource table;
//! * [`front`] — a FORTRAN-flavoured loop DSL with if-conversion,
//!   load/store elimination, and exact-distance dependence analysis;
//! * [`sched`] — the bidirectional slack scheduler (§4–§5), a
//!   Cydrome-style baseline (§8), the §3 lower bounds, and the register
//!   pressure measures;
//! * [`regalloc`] — rotating register allocation and modulo variable
//!   expansion;
//! * [`codegen`] — kernel-only code emission with rotating specifiers;
//! * [`sim`] — a VLIW simulator plus a reference interpreter for
//!   end-to-end equivalence checking;
//! * [`loops`] — the synthesized 1,525-loop benchmark corpus;
//! * [`pipeline`] — the `CompileSession` pass manager wiring all of the
//!   above together, with unified diagnostics
//!   ([`pipeline::LsmsError`]) and per-pass observability
//!   ([`pipeline::PassReport`]).
//!
//! # Quickstart
//!
//! ```
//! use lsms::front::compile;
//! use lsms::machine::huff_machine;
//! use lsms::sched::{SchedProblem, SlackScheduler};
//!
//! let unit = compile(
//!     "loop daxpy(i = 1..n) {
//!          real x[], y[];
//!          param real a;
//!          y[i] = y[i] + a * x[i];
//!      }",
//! )?;
//! let machine = huff_machine();
//! let problem = SchedProblem::new(&unit.loops[0].body, &machine)?;
//! let schedule = SlackScheduler::new().run(&problem)?;
//! assert_eq!(schedule.ii, problem.mii());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lsms_codegen as codegen;
pub use lsms_front as front;
pub use lsms_ir as ir;
pub use lsms_loops as loops;
pub use lsms_machine as machine;
pub use lsms_pipeline as pipeline;
pub use lsms_regalloc as regalloc;
pub use lsms_sched as sched;
pub use lsms_sim as sim;
